#pragma once

// Typed errors for the serving surface.
//
// Everything that crosses a SamplerService boundary fails with a
// ServiceError carrying a machine-readable code — the contract a remote
// transport needs (an error code survives a wire hop; a C++ exception type
// does not). This replaces the pre-service mix of std::out_of_range (unknown
// fingerprints) and EngineConfigError (bad request arguments) that used to
// escape the pool's serving calls. EngineConfigError remains the
// construction/validation error below the service layer; LocalService
// translates it at the admit boundary.

#include <stdexcept>
#include <string>
#include <string_view>

namespace cliquest::engine {

enum class ServiceErrorCode {
  /// A batch/lookup named a fingerprint no admission created.
  unknown_fingerprint,
  /// A request argument is out of range (e.g. draw_count < 0).
  invalid_request,
  /// Admission-time configuration rejected (wraps EngineConfigError).
  invalid_config,
  /// Wire bytes do not parse as any message (bad magic/tag/length/payload).
  malformed_message,
  /// Wire bytes carry a version this build does not speak.
  version_mismatch,
  /// The service cannot serve (shutting down, no shards, ...).
  unavailable,
  /// The connection to a remote peer failed: could not (re)connect, the peer
  /// dropped mid-request, or the stream tore mid-frame. In-flight batches on
  /// a dropped peer fail with this code.
  transport,
  /// A deadline expired before the serving side produced the response.
  timeout,
  /// The request was routed with an out-of-date cluster shard map: the
  /// serving shard no longer (or does not yet) own the fingerprint. The
  /// current map rides the wire alongside this code (a stale_map frame), so
  /// the client converges and retries without a coordinator round-trip.
  stale_map,
  /// A coordinator-originated frame carried a lease epoch older than the one
  /// the shard has already adopted: the sender was fenced by a standby
  /// takeover. Unlike stale_map this is not retried — the fenced coordinator
  /// must stand down; a zombie primary returning from a pause cannot tear a
  /// migration the new epoch's coordinator owns.
  stale_epoch,
};

/// Stable lowercase token, e.g. "unknown_fingerprint"; the code's wire name.
std::string_view service_error_name(ServiceErrorCode code);

/// The one exception type the serving surface throws (synchronously) or
/// delivers through submit_batch futures. what() is
/// "<code name>: <detail>".
///
/// An `unavailable` raised by load shedding (a pool or server bound was
/// hit) carries a positive retry_after_ms hint — the serving side's
/// estimate of when capacity frees up. Clients distinguish *shed* load
/// (retry_after_ms > 0: retry the same target after the hint) from
/// *structural* unavailability (retry_after_ms == 0: retrying will not
/// help — e.g. shutting down, no shards configured).
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ServiceErrorCode code, const std::string& detail);
  ServiceError(ServiceErrorCode code, const std::string& detail,
               int retry_after_ms);

  ServiceErrorCode code() const { return code_; }

  /// Milliseconds the server suggests waiting before a retry; 0 when the
  /// error carries no hint (the default for every non-shed error).
  int retry_after_ms() const { return retry_after_ms_; }

 private:
  ServiceErrorCode code_;
  int retry_after_ms_ = 0;
};

}  // namespace cliquest::engine
