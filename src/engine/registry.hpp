#pragma once

// Factory / registry for engine backends.
//
// The four built-in backends are pre-registered; downstream code can add its
// own factories (e.g. a sharded or remote sampler) under new names without
// touching this file. Lookup is by Backend enum or canonical string name;
// unknown names raise an error that lists what is registered.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/sampler.hpp"
#include "util/sync.hpp"

namespace cliquest::engine {

/// Thread-safe: add() and the lookups may run concurrently (registration
/// and creation are serialized by an internal mutex; factories themselves
/// run outside the lock).
class SamplerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SpanningTreeSampler>(
      graph::Graph, const EngineOptions&)>;

  /// A fresh registry pre-populated with the built-in backends. Tests and
  /// embedders that want isolated registration state construct their own;
  /// most callers use instance().
  SamplerRegistry();

  /// The process-wide registry, with the built-in backends registered.
  static SamplerRegistry& instance();

  /// Registers a factory under a name; throws std::invalid_argument if the
  /// name is already taken.
  void add(std::string name, Factory factory);

  /// Constructs a sampler. The string overload accepts any registered name;
  /// the Backend overload uses the enum's canonical name. The options'
  /// backend field is rewritten to match the requested backend so a single
  /// EngineOptions template can drive a sweep over backends.
  std::unique_ptr<SpanningTreeSampler> create(std::string_view name, graph::Graph g,
                                              EngineOptions options = {}) const;
  std::unique_ptr<SpanningTreeSampler> create(Backend backend, graph::Graph g,
                                              EngineOptions options = {}) const;

  bool contains(std::string_view name) const;

  /// Registered names in registration order (built-ins first).
  std::vector<std::string> names() const;

 private:
  Factory find_factory(std::string_view name) const;

  mutable util::Mutex mutex_;
  std::vector<std::pair<std::string, Factory>> factories_ GUARDED_BY(mutex_);
};

/// Convenience: build via the global registry from options.backend.
std::unique_ptr<SpanningTreeSampler> make_sampler(graph::Graph g,
                                                  const EngineOptions& options);

/// Convenience: build by name with otherwise-default options.
std::unique_ptr<SpanningTreeSampler> make_sampler(std::string_view backend,
                                                  graph::Graph g,
                                                  EngineOptions options = {});

}  // namespace cliquest::engine
