#pragma once

// Engine-level configuration: one options object for every backend, with a
// validating builder and explicit error reporting.
//
// EngineOptions subsumes core::SamplerOptions (the Congested Clique knobs)
// and doubling::CoverTimeSamplerOptions (the cover-time knobs); the shared
// fields — seed, threads, start_vertex — live at the top level and are
// written through to whichever backend is selected. Misconfiguration raises
// EngineConfigError carrying *every* violated constraint, instead of the
// silent clamping / undefined behaviour of the raw structs.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.hpp"
#include "doubling/covertime_sampler.hpp"
#include "engine/backend.hpp"

namespace cliquest::engine {

/// Thrown by EngineOptions::validate / EngineOptionsBuilder::build /
/// sampler construction. what() joins all messages; errors() keeps them
/// separate for programmatic use.
class EngineConfigError : public std::invalid_argument {
 public:
  explicit EngineConfigError(std::vector<std::string> errors);
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::vector<std::string> errors_;
};

class EngineOptionsBuilder;

struct EngineOptions {
  Backend backend = Backend::congested_clique;

  /// Base seed for batch draws: draw i of sample_batch uses an independent
  /// stream derived from (seed, i), so batches are reproducible regardless
  /// of thread count.
  std::uint64_t seed = 1;

  /// Worker threads for sample_batch; draws fan out across threads once
  /// prepare() has run (every backend's draw path is const after prepare).
  int threads = 1;

  /// Walk start / tree root, uniform across backends (overrides
  /// clique.start_vertex and covertime.root).
  int start_vertex = 0;

  /// Congested Clique backend knobs (epsilon, mode, matching strategy, ...).
  core::SamplerOptions clique;

  /// Doubling / cover-time backend knobs (initial_tau, max_attempts, ...).
  doubling::CoverTimeSamplerOptions covertime;

  static EngineOptionsBuilder builder();

  /// All violated constraints, empty when valid. vertex_count < 0 skips the
  /// graph-dependent checks (start_vertex range, rho_override <= n).
  std::vector<std::string> validation_errors(int vertex_count = -1) const;

  /// Throws EngineConfigError listing every violation; no-op when valid.
  void validate(int vertex_count = -1) const;

  /// The clique backend's view: clique with start_vertex written through.
  core::SamplerOptions clique_options() const;

  /// The doubling backend's view: covertime with root = start_vertex.
  doubling::CoverTimeSamplerOptions covertime_options() const;
};

/// Fluent construction with validation at build() time:
///   auto options = EngineOptions::builder()
///                      .backend(Backend::wilson)
///                      .seed(7)
///                      .threads(4)
///                      .build();  // throws EngineConfigError when invalid
class EngineOptionsBuilder {
 public:
  EngineOptionsBuilder& backend(Backend b);
  EngineOptionsBuilder& backend(std::string_view name);  // throws on unknown
  EngineOptionsBuilder& seed(std::uint64_t s);
  EngineOptionsBuilder& threads(int t);
  EngineOptionsBuilder& start_vertex(int v);
  EngineOptionsBuilder& epsilon(double eps);
  EngineOptionsBuilder& mode(core::SamplingMode m);
  EngineOptionsBuilder& matching(core::MatchingStrategy m);
  EngineOptionsBuilder& rho_override(int rho);
  EngineOptionsBuilder& paper_cubic_length(bool on);
  EngineOptionsBuilder& length_factor(double f);
  EngineOptionsBuilder& metropolis_steps_per_site(int steps);
  EngineOptionsBuilder& words_per_entry(int words);
  /// Schur-cache byte budget for the clique backend (0 = disabled).
  EngineOptionsBuilder& schur_cache_budget(std::size_t bytes);
  EngineOptionsBuilder& initial_tau(std::int64_t tau);
  EngineOptionsBuilder& max_attempts(int attempts);

  /// Validates the graph-independent constraints and returns the options.
  EngineOptions build() const;

 private:
  EngineOptions options_;
};

}  // namespace cliquest::engine
