#pragma once

// Lock-cheap serving metrics: log-bucketed latency histograms and
// queue-depth/in-flight gauges.
//
// `LatencyHistogram` is a fixed array of relaxed atomic counters bucketed
// on a log scale with 4 sub-buckets per octave (~19% worst-case relative
// error), covering 0 µs to ~2.3 hours. `record()` is a single relaxed
// fetch_add on the hot path — safe to call from every pool worker and
// transport responder without contending a lock.
//
// `HistogramSnapshot` is the plain-data view: sparse, sorted
// (bucket, count) pairs plus exact total/sum. Snapshots merge additively
// and round-trip through the wire codec byte-exactly (indices strictly
// increasing), so 1-shard and N-shard deployments report identical merged
// histograms for identical traffic.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cliquest::engine {

struct ServiceStats;

namespace metrics {

/// Number of histogram buckets. With 4 sub-buckets per octave this spans
/// [0, ~2^33) microseconds before clamping into the last bucket.
inline constexpr int kBucketCount = 128;

/// Maps a non-negative latency in microseconds to its bucket index in
/// [0, kBucketCount). Values 0..3 get exact buckets; beyond that each
/// octave [2^e, 2^(e+1)) splits into 4 sub-buckets.
int bucket_index(std::uint64_t micros);

/// Lower bound in microseconds of the values mapped to `bucket`
/// (the inverse of bucket_index, rounded down to the bucket floor).
std::uint64_t bucket_floor_micros(int bucket);

/// Plain-data histogram snapshot: exact total count and sum plus sparse
/// sorted per-bucket counts. Quantiles are resolved to bucket floors, so
/// they are conservative (never overestimate) and merge-stable.
struct HistogramSnapshot {
  std::uint64_t total = 0;
  std::uint64_t sum_micros = 0;
  /// (bucket index, count) pairs, indices strictly increasing, counts > 0.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> buckets;

  bool empty() const { return total == 0; }

  /// Approximate quantile in microseconds for q in [0, 1]; 0 when empty.
  std::uint64_t quantile(double q) const;

  /// Exact mean in microseconds (sum/total); 0 when empty.
  double mean_micros() const;

  /// Adds `other`'s counts into this snapshot.
  void merge(const HistogramSnapshot& other);

  friend bool operator==(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) {
    return a.total == b.total && a.sum_micros == b.sum_micros &&
           a.buckets == b.buckets;
  }
};

/// Concurrent latency histogram. record() is wait-free (one relaxed
/// fetch_add per counter); snapshot() is a relaxed sweep, so a snapshot
/// taken concurrently with recording is internally consistent only up to
/// per-counter atomicity — fine for monitoring, and exact once writers
/// are quiescent.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(std::uint64_t micros);

  HistogramSnapshot snapshot() const;

  /// Mean of all recorded values in microseconds; 0 when empty.
  double mean_micros() const;

 private:
  std::atomic<std::uint64_t> counts_[kBucketCount] = {};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_micros_{0};
};

/// The serving-surface metrics block carried inside ServiceStats and
/// merged additively across shards and replicas (gauges included: a
/// merged queue_depth is the total backlog across children).
struct MetricsSnapshot {
  /// End-to-end pool serve time per batch (prepare + draws), µs.
  HistogramSnapshot batch_serve;
  /// Time an async batch waited in the pool queue before a worker, µs.
  HistogramSnapshot queue_wait;
  /// transport::Server request handling time (read → response write), µs.
  HistogramSnapshot dispatch;
  /// RemoteService client-observed round-trip time per request, µs.
  HistogramSnapshot remote_rtt;
  /// Batches waiting in pool worker queues right now.
  std::int64_t queue_depth = 0;
  /// Draws reserved (cursor ranges handed out) but not yet completed.
  std::int64_t in_flight_draws = 0;
  /// Requests shed at the transport edge (per-connection in-flight bound).
  std::int64_t edge_shed_requests = 0;

  void merge(const MetricsSnapshot& other);

  friend bool operator==(const MetricsSnapshot& a, const MetricsSnapshot& b) {
    return a.batch_serve == b.batch_serve && a.queue_wait == b.queue_wait &&
           a.dispatch == b.dispatch && a.remote_rtt == b.remote_rtt &&
           a.queue_depth == b.queue_depth &&
           a.in_flight_draws == b.in_flight_draws &&
           a.edge_shed_requests == b.edge_shed_requests;
  }
};

/// Renders a stats snapshot as scrapeable plaintext (Prometheus-style
/// `name{label="..."} value` lines): served/shed counters, cache rates,
/// queue gauges, and p50/p99/p999 for every histogram with data. This is
/// what the wire `metrics_query` frame and `pool_server --metrics-port`
/// return.
std::string render_text(const ServiceStats& stats);

}  // namespace metrics
}  // namespace cliquest::engine
