#include "engine/errors.hpp"

namespace cliquest::engine {

std::string_view service_error_name(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::unknown_fingerprint:
      return "unknown_fingerprint";
    case ServiceErrorCode::invalid_request:
      return "invalid_request";
    case ServiceErrorCode::invalid_config:
      return "invalid_config";
    case ServiceErrorCode::malformed_message:
      return "malformed_message";
    case ServiceErrorCode::version_mismatch:
      return "version_mismatch";
    case ServiceErrorCode::unavailable:
      return "unavailable";
    case ServiceErrorCode::transport:
      return "transport";
    case ServiceErrorCode::timeout:
      return "timeout";
    case ServiceErrorCode::stale_map:
      return "stale_map";
    case ServiceErrorCode::stale_epoch:
      return "stale_epoch";
  }
  return "unknown";
}

ServiceError::ServiceError(ServiceErrorCode code, const std::string& detail)
    : std::runtime_error(std::string(service_error_name(code)) + ": " + detail),
      code_(code) {}

ServiceError::ServiceError(ServiceErrorCode code, const std::string& detail,
                           int retry_after_ms)
    : ServiceError(code, detail) {
  retry_after_ms_ = retry_after_ms;
}

}  // namespace cliquest::engine
