#pragma once

// Unified per-draw and aggregate reporting for the engine.
//
// The legacy backends each report differently (core::RoundReport with phase
// tables, doubling::CoverTimeSamplerResult fields, nothing at all for the
// sequential baselines); the engine normalizes all of them into DrawStats
// records plus one merged cclique::Meter, and exports the whole batch as
// JSON for the bench harness.

#include <cstdint>
#include <string>
#include <vector>

#include "cclique/meter.hpp"

namespace cliquest::engine {

/// One draw through the common interface. Fields a backend cannot measure
/// stay at their zero defaults (e.g. rounds for the sequential baselines).
struct DrawStats {
  std::int64_t index = 0;    // absolute draw index: the (seed, index) stream
  std::int64_t rounds = 0;   // simulated Congested Clique rounds
  std::int64_t walk_steps = 0;  // total walk length consumed by the draw
  int phases = 0;            // phases (clique) or doubling attempts
  double seconds = 0.0;      // wall-clock draw time
  /// Schur-cache traffic (clique backend): phases served from the sampler's
  /// per-active-set derivative cache vs. phases that built it. Zero for
  /// other backends, disabled caches, and draws that stay in phase 1.
  std::int64_t schur_cache_hits = 0;
  std::int64_t schur_cache_misses = 0;
};

/// Aggregate report for a sample_batch() call (a single sample() is a batch
/// of one).
struct BatchReport {
  std::string backend;       // canonical backend name
  int vertex_count = 0;
  std::uint64_t seed = 0;
  int threads = 1;

  /// Times the per-graph precomputation was actually built and the wall
  /// clock it took; stays at one build per sampler no matter how many draws
  /// follow, which is the amortization sample_batch exists for.
  std::int64_t prepare_builds = 0;
  double prepare_seconds = 0.0;

  std::vector<DrawStats> draws;

  /// Round/message anatomy merged across all draws (empty categories for
  /// backends that charge no simulated rounds).
  cclique::Meter meter;

  std::int64_t total_rounds() const;
  std::int64_t total_walk_steps() const;
  double total_seconds() const;  // sum of per-draw wall clock, excl. prepare
  double mean_rounds() const;
  double mean_seconds() const;
  std::int64_t total_schur_cache_hits() const;
  std::int64_t total_schur_cache_misses() const;
  /// hits / (hits + misses), or 0 with no cache traffic.
  double schur_cache_hit_rate() const;

  /// Human-readable aggregate table (backend, draws, rounds, timing).
  std::string summary() const;

  /// Structured export for the bench harness: backend/seed/threads header,
  /// prepare cost, totals, means, per-draw records, and meter categories.
  std::string to_json() const;
};

}  // namespace cliquest::engine
