#include "engine/backend.hpp"

#include <stdexcept>

namespace cliquest::engine {

std::string_view backend_name(Backend backend) {
  switch (backend) {
    case Backend::congested_clique:
      return "congested_clique";
    case Backend::doubling:
      return "doubling";
    case Backend::wilson:
      return "wilson";
    case Backend::aldous_broder:
      return "aldous_broder";
  }
  throw std::invalid_argument("backend_name: unknown Backend value");
}

Backend backend_from_string(std::string_view name) {
  for (Backend backend : all_backends())
    if (backend_name(backend) == name) return backend;
  std::string known;
  for (Backend backend : all_backends()) {
    if (!known.empty()) known += ", ";
    known += backend_name(backend);
  }
  throw std::invalid_argument("backend_from_string: unknown backend \"" +
                              std::string(name) + "\" (known: " + known + ")");
}

const std::vector<Backend>& all_backends() {
  static const std::vector<Backend> backends = {
      Backend::congested_clique,
      Backend::doubling,
      Backend::wilson,
      Backend::aldous_broder,
  };
  return backends;
}

}  // namespace cliquest::engine
