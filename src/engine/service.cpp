#include "engine/service.hpp"

#include <string>
#include <utility>

#include "util/rng.hpp"

namespace cliquest::engine {
namespace {

/// Rendezvous weight of (fingerprint, shard): both halves of the
/// fingerprint feed the splitmix64 finalizer so no 64-bit structure
/// survives the mix.
std::uint64_t rendezvous_score(const Fingerprint& fp, int shard) {
  return util::splitmix64(
      fp.hi ^ util::splitmix64(fp.lo ^ static_cast<std::uint64_t>(shard)));
}

/// Field-wise sum — max-type fields (resident/peak bytes) included, so the
/// merged peak is a sum-of-peaks upper bound (see ServiceStats).
void merge_stats(PoolStats& into, const PoolStats& from) {
  into.admissions += from.admissions;
  into.hits += from.hits;
  into.misses += from.misses;
  into.prepares += from.prepares;
  into.evictions += from.evictions;
  into.draws += from.draws;
  into.schur_cache_hits += from.schur_cache_hits;
  into.schur_cache_misses += from.schur_cache_misses;
  into.schur_cache_trims += from.schur_cache_trims;
  into.resident_bytes += from.resident_bytes;
  into.peak_resident_bytes += from.peak_resident_bytes;
  into.resident_count += from.resident_count;
  into.admitted_count += from.admitted_count;
  into.shed_batches += from.shed_batches;
  into.shed_draws += from.shed_draws;
}

void merge_transport(TransportStats& into, const TransportStats& from) {
  into.dials += from.dials;
  into.reconnects += from.reconnects;
  into.dial_failures += from.dial_failures;
  into.failovers += from.failovers;
  into.shed_retries += from.shed_retries;
  into.map_refreshes += from.map_refreshes;
  into.map_pulls += from.map_pulls;
  into.timeouts += from.timeouts;
}

}  // namespace

SamplerService::~SamplerService() = default;  // watcher futures join here

std::int64_t SamplerService::draw_cursor(const Fingerprint& fp) const {
  throw ServiceError(ServiceErrorCode::unavailable,
                     "this service does not export draw cursors (fingerprint " +
                         fp.to_string() + ")");
}

std::int64_t SamplerService::in_flight(const Fingerprint& fp) const {
  throw ServiceError(ServiceErrorCode::unavailable,
                     "this service does not report in-flight batches (fingerprint " +
                         fp.to_string() + ")");
}

bool SamplerService::drop(const Fingerprint& fp) {
  throw ServiceError(ServiceErrorCode::unavailable,
                     "this service does not support drop (fingerprint " +
                         fp.to_string() + ")");
}

bool SamplerService::drop_fenced(const Fingerprint& fp, std::uint64_t /*epoch*/) {
  // In-process there is no fencing edge — the epoch guard lives on the
  // transport server. Forwarding keeps the coordinator's drop path uniform.
  return drop(fp);
}

std::vector<Fingerprint> SamplerService::catalog_fingerprints() const {
  throw ServiceError(ServiceErrorCode::unavailable,
                     "this service does not export its admission catalog");
}

AdmitRequest SamplerService::export_admit(const Fingerprint& fp) const {
  throw ServiceError(ServiceErrorCode::unavailable,
                     "this service does not export admissions (fingerprint " +
                         fp.to_string() + ")");
}

cluster::ShardMap SamplerService::fetch_map() const {
  throw ServiceError(ServiceErrorCode::unavailable,
                     "this service holds no cluster shard map");
}

bool SamplerService::push_map(const cluster::ShardMap&) const {
  throw ServiceError(ServiceErrorCode::unavailable,
                     "this service accepts no cluster shard map");
}

std::vector<std::future<BatchResponse>> SamplerService::submit_all(
    const std::vector<BatchRequest>& requests) {
  std::vector<std::future<BatchResponse>> futures;
  futures.reserve(requests.size());
  // submit_batch reserves each request's draw-index range before returning,
  // so this loop pins the streams in request order; the work itself runs
  // concurrently on whatever workers the implementation owns.
  for (const BatchRequest& request : requests)
    futures.push_back(submit_batch(request));
  return futures;
}

std::vector<std::future<BatchResponse>> SamplerService::submit_all(
    const std::vector<BatchRequest>& requests, std::chrono::milliseconds deadline) {
  const auto expiry = std::chrono::steady_clock::now() + deadline;
  auto inner = std::make_shared<std::vector<std::future<BatchResponse>>>(
      submit_all(requests));
  auto promises = std::make_shared<std::vector<std::promise<BatchResponse>>>(
      inner->size());
  std::vector<std::future<BatchResponse>> wrapped;
  wrapped.reserve(promises->size());
  for (std::promise<BatchResponse>& promise : *promises)
    wrapped.push_back(promise.get_future());

  // One watcher per fan-out forwards each child future as it completes and
  // expires the stragglers at the deadline. It never calls get() on an
  // unready future after expiry, so a wedged shard costs the watcher nothing
  // beyond the deadline itself.
  auto watcher = std::async(std::launch::async, [inner, promises, expiry, deadline] {
    std::vector<bool> done(inner->size(), false);
    std::size_t remaining = inner->size();
    while (remaining > 0) {
      bool progressed = false;
      for (std::size_t i = 0; i < inner->size(); ++i) {
        if (done[i]) continue;
        if ((*inner)[i].wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
          continue;
        done[i] = true;
        --remaining;
        progressed = true;
        try {
          (*promises)[i].set_value((*inner)[i].get());
        } catch (...) {
          (*promises)[i].set_exception(std::current_exception());
        }
      }
      if (remaining == 0) break;
      if (std::chrono::steady_clock::now() >= expiry) {
        auto timeout = std::make_exception_ptr(ServiceError(
            ServiceErrorCode::timeout,
            "shard response missed the " + std::to_string(deadline.count()) +
                "ms submit_all deadline"));
        for (std::size_t i = 0; i < inner->size(); ++i)
          if (!done[i]) (*promises)[i].set_exception(timeout);
        break;
      }
      if (!progressed) {
        // Nothing ready: sleep briefly on the first straggler (bounded so a
        // different future completing early is noticed promptly).
        for (std::size_t i = 0; i < inner->size(); ++i) {
          if (done[i]) continue;
          (*inner)[i].wait_for(std::chrono::milliseconds(1));
          break;
        }
      }
    }
  });

  {
    const util::MutexLock lock(watchers_mutex_);
    // Prune watchers from completed fan-outs so long-lived services do not
    // accumulate them.
    std::erase_if(watchers_, [](std::future<void>& f) {
      return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    });
    watchers_.push_back(std::move(watcher));
  }
  return wrapped;
}

// ------------------------------------------------------------ LocalService

LocalService::LocalService(PoolOptions options) : pool_(std::move(options)) {}

Fingerprint LocalService::admit(const AdmitRequest& request) {
  try {
    return pool_.admit(request.graph, request.options, request.first_draw_index);
  } catch (const EngineConfigError& e) {
    // Below the service layer this is a construction/validation error; on
    // the serving surface every failure is a ServiceError.
    throw ServiceError(ServiceErrorCode::invalid_config, e.what());
  }
}

bool LocalService::admitted(const Fingerprint& fp) const { return pool_.admitted(fp); }

bool LocalService::resident(const Fingerprint& fp) const { return pool_.resident(fp); }

std::int64_t LocalService::prepare_count(const Fingerprint& fp) const {
  return pool_.prepare_count(fp);
}

std::int64_t LocalService::draw_cursor(const Fingerprint& fp) const {
  return pool_.draw_cursor(fp);
}

std::int64_t LocalService::in_flight(const Fingerprint& fp) const {
  return pool_.in_flight(fp);
}

bool LocalService::drop(const Fingerprint& fp) { return pool_.drop(fp); }

std::vector<Fingerprint> LocalService::catalog_fingerprints() const {
  return pool_.admitted_fingerprints();
}

AdmitRequest LocalService::export_admit(const Fingerprint& fp) const {
  auto [graph, options] = pool_.admitted_entry(fp);
  AdmitRequest request;
  request.graph = std::move(graph);
  request.options = options;
  // Export the live cursor so a re-admission elsewhere continues the
  // (seed, index) streams exactly where this entry stopped.
  request.first_draw_index = pool_.draw_cursor(fp);
  return request;
}

BatchResponse LocalService::sample_batch(const BatchRequest& request) {
  return pool_.sample_batch(request.fingerprint, request.draw_count,
                            request.first_draw_index);
}

std::future<BatchResponse> LocalService::submit_batch(const BatchRequest& request) {
  // The pool's future is the response future: promise-backed, so
  // wait_for/wait_until readiness polling behaves, and already stamped with
  // the pool's shard_id.
  return pool_.submit_batch(request.fingerprint, request.draw_count,
                            request.first_draw_index);
}

ServiceStats LocalService::stats() const {
  ServiceStats stats;
  stats.totals = pool_.stats();
  stats.metrics = pool_.metrics();
  stats.shards = {stats.totals};
  return stats;
}

// ---------------------------------------------------------- ShardedService

ShardedService::ShardedService(std::vector<std::unique_ptr<SamplerService>> shards)
    : shards_(std::move(shards)) {
  if (shards_.empty())
    throw ServiceError(ServiceErrorCode::unavailable,
                       "ShardedService needs at least one shard");
  for (const std::unique_ptr<SamplerService>& shard : shards_)
    if (shard == nullptr)
      throw ServiceError(ServiceErrorCode::unavailable,
                         "ShardedService shard must not be null");
}

namespace {
std::vector<std::unique_ptr<SamplerService>> make_local_shards(
    int shard_count, const PoolOptions& options) {
  if (shard_count < 1)
    throw ServiceError(ServiceErrorCode::invalid_config,
                       "ShardedService: shard_count must be >= 1, got " +
                           std::to_string(shard_count));
  std::vector<std::unique_ptr<SamplerService>> shards;
  shards.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    PoolOptions shard_options = options;
    shard_options.shard_id = i;  // responses self-identify their shard
    shards.push_back(std::make_unique<LocalService>(std::move(shard_options)));
  }
  return shards;
}
}  // namespace

ShardedService::ShardedService(int shard_count, const PoolOptions& options)
    : ShardedService(make_local_shards(shard_count, options)) {}

int ShardedService::shard_for(const Fingerprint& fp) const {
  int best = 0;
  std::uint64_t best_score = rendezvous_score(fp, 0);
  for (int i = 1; i < shard_count(); ++i) {
    const std::uint64_t score = rendezvous_score(fp, i);
    if (score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

Fingerprint ShardedService::admit(const AdmitRequest& request) {
  // Route by the fingerprint the child will compute; the equality is a
  // structural invariant (same canonical hash on both sides of the call).
  const Fingerprint fp = fingerprint_graph(request.graph);
  return shards_[static_cast<std::size_t>(shard_for(fp))]->admit(request);
}

bool ShardedService::admitted(const Fingerprint& fp) const {
  return shards_[static_cast<std::size_t>(shard_for(fp))]->admitted(fp);
}

bool ShardedService::resident(const Fingerprint& fp) const {
  return shards_[static_cast<std::size_t>(shard_for(fp))]->resident(fp);
}

std::int64_t ShardedService::prepare_count(const Fingerprint& fp) const {
  return shards_[static_cast<std::size_t>(shard_for(fp))]->prepare_count(fp);
}

std::int64_t ShardedService::draw_cursor(const Fingerprint& fp) const {
  return shards_[static_cast<std::size_t>(shard_for(fp))]->draw_cursor(fp);
}

std::int64_t ShardedService::in_flight(const Fingerprint& fp) const {
  return shards_[static_cast<std::size_t>(shard_for(fp))]->in_flight(fp);
}

bool ShardedService::drop(const Fingerprint& fp) {
  return shards_[static_cast<std::size_t>(shard_for(fp))]->drop(fp);
}

std::vector<Fingerprint> ShardedService::catalog_fingerprints() const {
  std::vector<Fingerprint> all;
  for (const std::unique_ptr<SamplerService>& shard : shards_) {
    std::vector<Fingerprint> child = shard->catalog_fingerprints();
    all.insert(all.end(), child.begin(), child.end());
  }
  return all;
}

AdmitRequest ShardedService::export_admit(const Fingerprint& fp) const {
  return shards_[static_cast<std::size_t>(shard_for(fp))]->export_admit(fp);
}

BatchResponse ShardedService::sample_batch(const BatchRequest& request) {
  // The serving shard stamps its own id (PoolOptions::shard_id); the router
  // never rewrites responses, sync or async.
  return shards_[static_cast<std::size_t>(shard_for(request.fingerprint))]
      ->sample_batch(request);
}

std::future<BatchResponse> ShardedService::submit_batch(const BatchRequest& request) {
  // Pass the child's promise-backed future through untouched: readiness
  // polling works, and the response already carries the serving shard.
  return shards_[static_cast<std::size_t>(shard_for(request.fingerprint))]
      ->submit_batch(request);
}

ServiceStats ShardedService::stats() const {
  ServiceStats stats;
  stats.shards.reserve(shards_.size());
  for (const std::unique_ptr<SamplerService>& shard : shards_) {
    const ServiceStats child = shard->stats();
    stats.shards.push_back(child.totals);
    merge_stats(stats.totals, stats.shards.back());
    // Remote children carry their own dial history; sum it like the rest.
    merge_transport(stats.transport, child.transport);
    stats.metrics.merge(child.metrics);
  }
  return stats;
}

}  // namespace cliquest::engine
