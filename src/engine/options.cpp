#include "engine/options.hpp"

namespace cliquest::engine {
namespace {

std::string join(const std::vector<std::string>& errors) {
  std::string joined = "invalid engine configuration:";
  for (const std::string& error : errors) joined += "\n  - " + error;
  return joined;
}

}  // namespace

EngineConfigError::EngineConfigError(std::vector<std::string> errors)
    : std::invalid_argument(join(errors)), errors_(std::move(errors)) {}

EngineOptionsBuilder EngineOptions::builder() { return EngineOptionsBuilder{}; }

std::vector<std::string> EngineOptions::validation_errors(int vertex_count) const {
  // Backend-level constraints come from the shared core validator (run on
  // the clique view, i.e. with the engine's start_vertex written through) so
  // engine and direct-core construction accept exactly the same ranges.
  std::vector<std::string> errors =
      core::validate_sampler_options(clique_options(), vertex_count);
  const auto reject = [&errors](std::string message) {
    errors.push_back(std::move(message));
  };

  if (threads < 1)
    reject("threads must be >= 1, got " + std::to_string(threads));
  if (covertime.initial_tau < 0)
    reject("initial_tau must be >= 0 (0 selects the default scale), got " +
           std::to_string(covertime.initial_tau));
  if (covertime.max_attempts < 1)
    reject("max_attempts must be >= 1, got " +
           std::to_string(covertime.max_attempts));
  return errors;
}

void EngineOptions::validate(int vertex_count) const {
  std::vector<std::string> errors = validation_errors(vertex_count);
  if (!errors.empty()) throw EngineConfigError(std::move(errors));
}

core::SamplerOptions EngineOptions::clique_options() const {
  core::SamplerOptions out = clique;
  out.start_vertex = start_vertex;
  return out;
}

doubling::CoverTimeSamplerOptions EngineOptions::covertime_options() const {
  doubling::CoverTimeSamplerOptions out = covertime;
  out.root = start_vertex;
  return out;
}

EngineOptionsBuilder& EngineOptionsBuilder::backend(Backend b) {
  options_.backend = b;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::backend(std::string_view name) {
  options_.backend = backend_from_string(name);
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::seed(std::uint64_t s) {
  options_.seed = s;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::threads(int t) {
  options_.threads = t;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::start_vertex(int v) {
  options_.start_vertex = v;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::epsilon(double eps) {
  options_.clique.epsilon = eps;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::mode(core::SamplingMode m) {
  options_.clique.mode = m;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::matching(core::MatchingStrategy m) {
  options_.clique.matching = m;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::rho_override(int rho) {
  options_.clique.rho_override = rho;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::paper_cubic_length(bool on) {
  options_.clique.paper_cubic_length = on;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::length_factor(double f) {
  options_.clique.length_factor = f;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::metropolis_steps_per_site(int steps) {
  options_.clique.metropolis_steps_per_site = steps;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::words_per_entry(int words) {
  options_.clique.words_per_entry = words;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::schur_cache_budget(std::size_t bytes) {
  options_.clique.schur_cache_budget_bytes = bytes;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::initial_tau(std::int64_t tau) {
  options_.covertime.initial_tau = tau;
  return *this;
}

EngineOptionsBuilder& EngineOptionsBuilder::max_attempts(int attempts) {
  options_.covertime.max_attempts = attempts;
  return *this;
}

EngineOptions EngineOptionsBuilder::build() const {
  options_.validate();
  return options_;
}

}  // namespace cliquest::engine
