#pragma once

// Structural graph fingerprints for the sampler pool's admission map.
//
// A fingerprint is a 128-bit hash of the canonical edge list: vertex count,
// edge count, and every edge as (min endpoint, max endpoint, weight bits) in
// sorted order. Edge *insertion order* therefore never matters, but vertex
// labels do — two isomorphic graphs with different labelings are distinct
// graphs to a sampler (trees are reported in the input labeling), so they
// hash apart on purpose. 128 bits keeps accidental collisions out of reach
// for any realistic pool population.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "graph/graph.hpp"

namespace cliquest::engine {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint&) const = default;

  /// 32 lowercase hex digits (hi then lo); the key used in logs and errors.
  std::string to_string() const;
};

/// The canonical edge-list hash of g (see file comment for what "canonical"
/// includes). Deterministic across runs and platforms.
Fingerprint fingerprint_graph(const graph::Graph& g);

}  // namespace cliquest::engine

template <>
struct std::hash<cliquest::engine::Fingerprint> {
  std::size_t operator()(const cliquest::engine::Fingerprint& fp) const noexcept {
    // hi and lo are already well mixed; fold them.
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};
