#pragma once

// Seeded chaos injection for the transport layer (PR 9).
//
// The unit of injection is the Connection seam: ChaoticConnection decorates
// any transport::Connection (loopback pipe or TCP socket) and consults a
// FaultPlan — a splitmix64-seeded decision stream — on every write and
// read. The same seed always produces the same fault schedule, so a chaos
// run that finds a bug is a reproducer, not an anecdote.
//
// Fault classes, and what the stack above must turn them into:
//
//   drop       the request frame vanishes (write swallowed, stream stays
//              up). The caller's deadline converts the silence into a typed
//              ServiceError{timeout} — never a hung future.
//   duplicate  the frame is written twice. The server executes the request
//              twice and answers twice; pinned draw ranges make the replays
//              byte-identical and the client drops the unmatched response.
//   truncate   half the frame, then close: a stream torn mid-frame. Both
//              ends surface ServiceError{transport}; the client re-dials.
//   sever      the connection closes before the frame leaves. Same typed
//              transport path, exercised at a different point in the
//              protocol.
//   delay      reads stall for a bounded jittered interval — reordering and
//              latency without loss.
//   pause      a test-driven gate (FaultPlan::pause / resume) that freezes
//              the connection's I/O, e.g. while a standby coordinator takes
//              over around a frozen primary. The gate self-releases after
//              kMaxPause so no schedule can wedge a teardown.
//
// FaultPlan::max_faults bounds the total injected faults, so every schedule
// eventually goes quiet and the system's convergence — not its luck — is
// what the chaos suite asserts.

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>

#include "engine/transport.hpp"
#include "util/sync.hpp"

namespace cliquest::engine::chaos {

struct FaultPlanOptions {
  /// Seed of the decision stream. Equal seeds (and equal call sequences)
  /// produce equal fault schedules.
  std::uint64_t seed = 1;

  /// Per-write fault probabilities in [0, 1], evaluated cumulatively in
  /// this order from one uniform draw per write.
  double drop_write = 0.0;
  double duplicate_write = 0.0;
  double truncate_write = 0.0;
  double sever = 0.0;

  /// Probability a read is delayed, and the bound on the jittered delay.
  double delay_read = 0.0;
  std::chrono::milliseconds max_delay{20};

  /// Total faults (drop/duplicate/truncate/sever — delays are benign and
  /// uncounted) this plan injects before going permanently quiet.
  int max_faults = 4;
};

enum class WriteFault { none, drop, duplicate, truncate, sever };

/// Thread-safe seeded fault decision stream, shared by every connection of
/// one chaos schedule (a re-dialed connection continues the stream, it does
/// not restart it).
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanOptions options = {});

  /// The fault to apply to the next write (none once max_faults is spent).
  WriteFault next_write_fault();

  /// The delay to apply before the next read (zero for most reads).
  std::chrono::milliseconds next_read_delay();

  /// Freezes / releases every ChaoticConnection consulting this plan. A
  /// pause outlasting kMaxPause lapses on its own so teardown never wedges.
  void pause();
  void resume();

  /// Blocks while paused (bounded by kMaxPause past the pause() call).
  void wait_while_paused();

  /// Faults injected so far (monotone; delays excluded).
  std::int64_t faults_injected() const;

  static constexpr std::chrono::milliseconds kMaxPause{2000};

 private:
  double next_unit_locked() REQUIRES(mutex_);

  const FaultPlanOptions options_;
  mutable util::Mutex mutex_;
  util::CondVar pause_cv_;
  std::uint64_t state_ GUARDED_BY(mutex_);
  std::int64_t injected_ GUARDED_BY(mutex_) = 0;
  bool paused_ GUARDED_BY(mutex_) = false;
  std::chrono::steady_clock::time_point pause_deadline_ GUARDED_BY(mutex_){};
};

/// A Connection decorator that applies a FaultPlan's schedule to an
/// otherwise healthy inner connection. Concurrency contract matches
/// Connection: one reader thread, one writer thread, close() from anywhere.
class ChaoticConnection final : public transport::Connection {
 public:
  ChaoticConnection(std::shared_ptr<transport::Connection> inner,
                    std::shared_ptr<FaultPlan> plan);

  std::size_t read_some(std::uint8_t* out, std::size_t max) override;
  bool write_all(std::span<const std::uint8_t> bytes) override;
  void close() override;

 private:
  std::shared_ptr<transport::Connection> inner_;
  std::shared_ptr<FaultPlan> plan_;
};

/// Convenience: wrap `inner` under `plan` (nullptr plan = no wrapping, the
/// inner connection passes through untouched).
std::shared_ptr<transport::Connection> inject(
    std::shared_ptr<transport::Connection> inner,
    std::shared_ptr<FaultPlan> plan);

}  // namespace cliquest::engine::chaos
