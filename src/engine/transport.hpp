#pragma once

// The remote leg of the serving stack (ROADMAP e): byte streams, framing,
// and the server side of the SamplerService RPC protocol.
//
// Layering, bottom up:
//
//   Connection      a blocking bidirectional byte stream. Two concrete
//                   flavors ship here — an in-memory loopback pipe (tests,
//                   benches, single-process demos) and a TCP socket — and
//                   the interface is small enough that tests can decorate it
//                   with fault injection (truncation, delays, drops).
//   Frame           the length-framed request/response envelope:
//                       u32 length | u64 request_id | wire message bytes
//                   (integers little-endian; length counts everything after
//                   itself). Request ids let many in-flight submit_batch
//                   futures multiplex over one connection: responses echo
//                   the id of the request they answer, and a streamed batch
//                   sends several frames under one id (batch_chunk* then the
//                   terminal batch_response).
//   Server          accepts one handshake frame (wire::Hello, id 0), then
//                   loops wire::peek_type -> decode -> dispatch to the same
//                   SamplerService virtuals every local caller uses ->
//                   encode. Batch requests run through submit_batch, so
//                   draw-cursor reservation order is frame arrival order and
//                   responses leave in completion order (out-of-order by
//                   design); every failure is answered with a typed
//                   wire::ErrorResponse, never a dropped request.
//
// The client half — RemoteService, a SamplerService over a Connection — and
// the in-process loopback wiring live in engine/remote_service.hpp.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "engine/cluster/shard_map.hpp"
#include "engine/metrics.hpp"
#include "engine/service.hpp"
#include "engine/wire.hpp"

namespace cliquest::engine::transport {

/// A blocking bidirectional byte stream between two peers. Implementations
/// must tolerate concurrent use by one reader thread and one writer thread,
/// plus close() from any thread (which wakes a blocked reader).
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocks until at least one byte is available and delivers up to `max`
  /// of them. Returns 0 when the stream is closed (either end). Throws
  /// ServiceError{transport} on a broken stream.
  virtual std::size_t read_some(std::uint8_t* out, std::size_t max) = 0;

  /// Writes the whole span; returns false when the peer is gone.
  virtual bool write_all(std::span<const std::uint8_t> bytes) = 0;

  /// Closes both directions and wakes blocked readers on both ends.
  /// Idempotent.
  virtual void close() = 0;
};

/// A cross-wired in-memory pipe: bytes written to one end are read from the
/// other. close() on either end closes the whole pipe. This is the loopback
/// transport the conformance and fault-injection suites run on.
std::pair<std::shared_ptr<Connection>, std::shared_ptr<Connection>> make_pipe();

/// A same-host shared-memory ring pair: one lock-free SPSC byte ring per
/// direction in anonymous shared memory (MAP_SHARED, so the pair also works
/// across a fork), with futex-backed blocking on Linux and a yield/sleep
/// fallback elsewhere. Cursors are monotone 64-bit publish counters — the
/// writer bumps `tail` after copying bytes in, the reader bumps `head`
/// after copying them out, and each side parks on a doorbell word only
/// after re-checking the cursors, so the hot path (space available, data
/// available) takes no lock and makes no syscall. ring_bytes is rounded up
/// to a power of two of at least 4 KiB per direction.
///
/// Same contract as make_pipe(): close() on either end closes both
/// directions and wakes blocked readers and writers. One addition: a close
/// that lands mid-write_all — after part of the call's bytes were published
/// — marks the stream *torn*, and the reader, after draining what was
/// published, gets ServiceError{transport} instead of a clean end-of-stream
/// (0), so a half-written frame can never be mistaken for an orderly
/// shutdown.
std::pair<std::shared_ptr<Connection>, std::shared_ptr<Connection>> make_shm_ring(
    std::size_t ring_bytes = 1u << 20);

/// A TCP listener bound to the loopback interface. port 0 picks an
/// ephemeral port (read it back with port()).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; returns nullptr once close() has been
  /// called. Throws ServiceError{transport} on listener failure.
  std::shared_ptr<Connection> accept();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port (numeric address or name). Throws
/// ServiceError{transport} when the peer is unreachable.
std::shared_ptr<Connection> tcp_connect(const std::string& host, std::uint16_t port);

// --------------------------------------------------------------- framing

struct Frame {
  std::uint64_t request_id = 0;
  wire::Bytes message;
};

inline constexpr std::uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Minimum plausible length-field value: the request id plus a wire
/// envelope (the length counts everything after itself).
inline constexpr std::uint32_t kMinFrameBytes = 8 + 7;

/// Writes one frame (single write_all call, so a frame is never interleaved
/// with another writer holding the same lock). Returns false when the peer
/// is gone.
bool write_frame(Connection& connection, std::uint64_t request_id,
                 std::span<const std::uint8_t> message);

/// Reads one frame. Returns nullopt on an orderly close before the first
/// byte; throws ServiceError{transport} when the stream tears mid-frame and
/// ServiceError{malformed_message} when the length field is implausible
/// (shorter than a frame header or longer than max_frame_bytes).
std::optional<Frame> read_frame(Connection& connection,
                                std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

// ---------------------------------------------------------------- server

struct ServerOptions {
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Responses with more trees than this are streamed: batch_chunk frames of
  /// this many trees each, then the terminal batch_response carrying the
  /// report. 0 disables chunking. The effective size per connection is the
  /// smaller nonzero advertisement from the handshake.
  std::uint32_t batch_chunk_trees = 512;

  /// Backpressure at the connection edge: the most batch requests one
  /// connection may have in flight (submitted, response not yet written).
  /// A request past the bound is shed with a typed unavailable +
  /// retry_after_ms *without* reaching submit_batch — no draw-index range
  /// is reserved, so shedding never perturbs replay. 0 = unbounded.
  std::uint32_t max_in_flight_batches = 1024;

  // Cluster control-plane hooks (engine/cluster). All optional: a server
  // without them — every pre-cluster deployment — rejects the corresponding
  // frames with ServiceError{unavailable} and serves everything else
  // unchanged.

  /// Answers map_query frames with the current cluster map (shard_map tag).
  std::function<cluster::ShardMap()> map_provider;

  /// Absorbs shard_map push frames — a coordinator's view change — and
  /// replies bool_response(accepted). Accepting means this server now routes
  /// and vetoes by the pushed map (or a newer one it already held).
  std::function<bool(const cluster::ShardMap&)> map_sink;

  /// Per-batch veto, run before submit_batch: return the current map to
  /// bounce the request with a stale_map frame carrying it — the client
  /// adopts the newer map and re-routes — or nullopt to serve. This is how a
  /// shard that lost ownership of a fingerprint turns misrouted batches into
  /// convergence instead of stale draws.
  std::function<std::optional<cluster::ShardMap>(const Fingerprint&)> stale_guard;

  // v6 HA / anti-entropy hooks, wired by cluster::install_cluster_hooks.

  /// Coordinator lease fencing: given the epoch a coordinator-originated
  /// frame (admit_request with coordinator_epoch >= 0, fenced_drop_query)
  /// claims, return the shard's current epoch to veto the frame with
  /// ServiceError{stale_epoch} — the sender was superseded by a standby
  /// takeover — or nullopt to let it through.
  std::function<std::optional<std::uint64_t>(std::uint64_t claimed_epoch)>
      epoch_guard;

  /// The (version, epoch) of the map this server currently routes by —
  /// cheap, no full map copy. When set, the server piggybacks a map_version
  /// frame (request id 0) ahead of the next response on every connection
  /// whose last announcement is out of date, so clients detect staleness
  /// without polling (anti-entropy).
  std::function<wire::MapVersion()> map_version_provider;

  /// Lets the control plane fold its own convergence counters (MapWatch
  /// pulls) into stats_query / metrics_query responses, after the server's
  /// edge metrics.
  std::function<void(ServiceStats&)> stats_augment;
};

/// The server side of the RPC protocol over one SamplerService. serve()
/// handles exactly one connection and blocks until the peer closes (run it
/// on its own thread per connection; the Server itself is stateless across
/// connections, so one Server instance can serve many concurrently).
class Server {
 public:
  explicit Server(SamplerService& service, ServerOptions options = {});

  /// Serves `connection` until orderly close or a connection-fatal protocol
  /// error. Never throws: protocol failures are answered with typed
  /// ErrorResponse frames where possible and otherwise end the connection.
  void serve(std::shared_ptr<Connection> connection);

  const ServerOptions& options() const { return options_; }

  /// Folds this server's own serving-edge metrics — request dispatch
  /// latency and edge sheds — into a stats snapshot. stats_query and
  /// metrics_query responses pass through here, so remote clients see the
  /// edge alongside the pool counters; `pool_server --metrics-port` calls
  /// it for its scrape endpoint.
  void fold_metrics(ServiceStats& stats) const;

 private:
  SamplerService& service_;
  ServerOptions options_;
  /// Request handling time, read → response write, all frame kinds.
  metrics::LatencyHistogram dispatch_hist_;
  std::atomic<std::int64_t> edge_sheds_{0};
};

}  // namespace cliquest::engine::transport
