#include "engine/report.hpp"

#include <cstdio>

namespace cliquest::engine {
namespace {

std::string fmt_double(double x) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", x);
  return buffer;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::int64_t BatchReport::total_rounds() const {
  std::int64_t total = 0;
  for (const DrawStats& draw : draws) total += draw.rounds;
  return total;
}

std::int64_t BatchReport::total_walk_steps() const {
  std::int64_t total = 0;
  for (const DrawStats& draw : draws) total += draw.walk_steps;
  return total;
}

double BatchReport::total_seconds() const {
  double total = 0.0;
  for (const DrawStats& draw : draws) total += draw.seconds;
  return total;
}

double BatchReport::mean_rounds() const {
  return draws.empty() ? 0.0
                       : static_cast<double>(total_rounds()) /
                             static_cast<double>(draws.size());
}

double BatchReport::mean_seconds() const {
  return draws.empty() ? 0.0 : total_seconds() / static_cast<double>(draws.size());
}

std::int64_t BatchReport::total_schur_cache_hits() const {
  std::int64_t total = 0;
  for (const DrawStats& draw : draws) total += draw.schur_cache_hits;
  return total;
}

std::int64_t BatchReport::total_schur_cache_misses() const {
  std::int64_t total = 0;
  for (const DrawStats& draw : draws) total += draw.schur_cache_misses;
  return total;
}

double BatchReport::schur_cache_hit_rate() const {
  const std::int64_t hits = total_schur_cache_hits();
  const std::int64_t lookups = hits + total_schur_cache_misses();
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(lookups);
}

std::string BatchReport::summary() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "engine batch: backend=%s n=%d draws=%zu threads=%d\n",
                backend.c_str(), vertex_count, draws.size(), threads);
  out += line;
  std::snprintf(line, sizeof(line),
                "  prepare: builds=%lld seconds=%.6f\n",
                static_cast<long long>(prepare_builds), prepare_seconds);
  out += line;
  std::snprintf(line, sizeof(line),
                "  rounds: total=%lld mean=%.1f | walk steps: %lld | seconds: "
                "total=%.6f mean=%.6f\n",
                static_cast<long long>(total_rounds()), mean_rounds(),
                static_cast<long long>(total_walk_steps()), total_seconds(),
                mean_seconds());
  out += line;
  return out;
}

std::string BatchReport::to_json() const {
  std::string out = "{";
  out += "\"backend\":";
  append_json_string(out, backend);
  out += ",\"n\":" + std::to_string(vertex_count);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"threads\":" + std::to_string(threads);
  out += ",\"draw_count\":" + std::to_string(draws.size());
  out += ",\"prepare\":{\"builds\":" + std::to_string(prepare_builds) +
         ",\"seconds\":" + fmt_double(prepare_seconds) + "}";
  out += ",\"totals\":{\"rounds\":" + std::to_string(total_rounds()) +
         ",\"walk_steps\":" + std::to_string(total_walk_steps()) +
         ",\"seconds\":" + fmt_double(total_seconds()) + "}";
  out += ",\"schur_cache\":{\"hits\":" + std::to_string(total_schur_cache_hits()) +
         ",\"misses\":" + std::to_string(total_schur_cache_misses()) +
         ",\"hit_rate\":" + fmt_double(schur_cache_hit_rate()) + "}";
  out += ",\"means\":{\"rounds\":" + fmt_double(mean_rounds()) +
         ",\"seconds\":" + fmt_double(mean_seconds()) + "}";

  out += ",\"draws\":[";
  for (std::size_t i = 0; i < draws.size(); ++i) {
    const DrawStats& draw = draws[i];
    if (i > 0) out += ',';
    out += "{\"index\":" + std::to_string(draw.index) +
           ",\"rounds\":" + std::to_string(draw.rounds) +
           ",\"walk_steps\":" + std::to_string(draw.walk_steps) +
           ",\"phases\":" + std::to_string(draw.phases) +
           ",\"seconds\":" + fmt_double(draw.seconds) +
           ",\"schur_cache_hits\":" + std::to_string(draw.schur_cache_hits) +
           ",\"schur_cache_misses\":" + std::to_string(draw.schur_cache_misses) +
           "}";
  }
  out += "]";

  out += ",\"meter\":{";
  bool first = true;
  for (const auto& [label, totals] : meter.categories()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, label);
    out += ":{\"rounds\":" + std::to_string(totals.rounds) +
           ",\"messages\":" + std::to_string(totals.messages) +
           ",\"events\":" + std::to_string(totals.events) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace cliquest::engine
