#pragma once

// Adapters bridging each legacy sampler onto the unified
// SpanningTreeSampler interface. Construct them through SamplerRegistry /
// make_sampler rather than directly; direct use of the wrapped classes
// (core::CongestedCliqueTreeSampler, doubling::sample_tree_by_doubling,
// walk::wilson, walk::aldous_broder) is deprecated in favour of this layer.

#include "core/tree_sampler.hpp"
#include "engine/sampler.hpp"

namespace cliquest::engine {

/// Theorem 1 / Appendix phase sampler. prepare() builds the phase-1
/// transition and shortcut matrices plus the target walk length once per
/// graph; every draw then reuses them (the legacy one-shot path rebuilt all
/// three on each sample()).
class CongestedCliqueBackend final : public SpanningTreeSampler {
 public:
  CongestedCliqueBackend(graph::Graph g, EngineOptions options);
  BackendInfo describe() const override;

  /// Underlying sampler, exposed for round-report consumers that need the
  /// per-phase anatomy the unified DrawStats intentionally flattens.
  const core::CongestedCliqueTreeSampler& impl() const { return impl_; }

 protected:
  void do_prepare() override;
  Draw do_sample(util::Rng& rng) const override;
  /// Power table + phase-1 transition/shortcut matrices + endpoint CDFs +
  /// current Schur-cache residency; the memory hot spot the pool's byte
  /// budget exists for.
  std::size_t do_memory_bytes() const override;
  /// Drops the per-active-set Schur cache (prepare() state survives).
  std::size_t do_trim_transient_cache() override;

 private:
  core::CongestedCliqueTreeSampler impl_;
};

/// Corollary 1 doubling / cover-time sampler (Las Vegas).
class DoublingBackend final : public SpanningTreeSampler {
 public:
  DoublingBackend(graph::Graph g, EngineOptions options);
  BackendInfo describe() const override;

 protected:
  void do_prepare() override;
  Draw do_sample(util::Rng& rng) const override;
  std::size_t do_memory_bytes() const override;  // no precomputation: 0
};

/// Wilson's loop-erased-walk sampler (sequential exact baseline).
class WilsonBackend final : public SpanningTreeSampler {
 public:
  WilsonBackend(graph::Graph g, EngineOptions options);
  BackendInfo describe() const override;

 protected:
  void do_prepare() override;
  Draw do_sample(util::Rng& rng) const override;
  std::size_t do_memory_bytes() const override;  // no precomputation: 0
};

/// Aldous-Broder cover-time sampler (sequential exact baseline).
class AldousBroderBackend final : public SpanningTreeSampler {
 public:
  AldousBroderBackend(graph::Graph g, EngineOptions options);
  BackendInfo describe() const override;

 protected:
  void do_prepare() override;
  Draw do_sample(util::Rng& rng) const override;
  std::size_t do_memory_bytes() const override;  // no precomputation: 0
};

}  // namespace cliquest::engine
