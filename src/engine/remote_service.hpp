#pragma once

// RemoteService: a SamplerService whose implementation lives on the other
// side of a transport::Connection — the client half of the RPC protocol in
// engine/transport.hpp. Because it implements the same interface as
// LocalService, a ShardedService routes to local and remote shards without
// changing a line: the remote leg is purely a deployment decision.
//
// Semantics:
//   - Connection lifecycle: the first call connects (through the supplied
//     ConnectionFactory) and performs the versioned handshake; a dropped
//     connection is re-dialed on the next call with exponential backoff
//     capped at backoff_cap, up to max_connect_attempts per call. A peer
//     speaking a foreign wire version fails immediately with the codec's
//     typed version_mismatch — no retry, the peer will not change its mind.
//   - Multiplexing: every request carries a fresh request id; one reader
//     thread per stripe routes response frames back to their caller, so any
//     number of submit_batch futures share the connections and responses may
//     arrive in any order (the server completes batches out of order by
//     design).
//   - Striping: RemoteOptions::stripes > 1 maintains that many independently
//     handshaken connections, each with its own reader thread, generation,
//     and backoff ladder. Requests go to the least-loaded live stripe, and
//     small (non-batch) queries skip stripes busy streaming chunk frames, so
//     one large batch never head-of-line-blocks unrelated calls. Pendings
//     are keyed by (stripe generation, id): a frame arriving on the wrong
//     stripe is dropped, never mis-delivered.
//   - Failure: when a connection drops, every in-flight request on *that
//     stripe* fails with ServiceError{transport} through its future — never
//     a hang, never a torn future, and never a casualty on a healthy
//     stripe. Sync calls additionally honor request_timeout with
//     ServiceError{timeout}.
//   - Streaming: large batches arrive as batch_chunk frames (negotiated in
//     the handshake) and are reassembled before the future resolves, so
//     callers never see chunking.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/metrics.hpp"
#include "engine/service.hpp"
#include "engine/transport.hpp"
#include "util/sync.hpp"

namespace cliquest::engine {

struct RemoteOptions {
  /// Deadline for synchronous calls (admit, queries, sample_batch). Zero
  /// waits forever. submit_batch futures are not timed — pair them with
  /// submit_all's deadline when a bound is needed.
  std::chrono::milliseconds request_timeout{30000};

  /// Connection attempts per call before giving up with
  /// ServiceError{transport}.
  int max_connect_attempts = 5;

  /// Backoff between attempts: backoff_initial doubling up to backoff_cap.
  std::chrono::milliseconds backoff_initial{10};
  std::chrono::milliseconds backoff_cap{1000};

  std::uint32_t max_frame_bytes = transport::kDefaultMaxFrameBytes;

  /// Independently handshaken connections this client stripes requests
  /// over. Each stripe has its own reader thread, generation, and backoff
  /// ladder; a dead stripe fails only its own in-flight calls. 1 (the
  /// default) is exactly the historical single-connection behavior.
  /// Validated to [1, 64] at construction.
  int stripes = 1;

  /// Advertised willingness to reassemble streamed batches (0 = ask the
  /// server not to chunk).
  std::uint32_t batch_chunk_trees = 512;

  /// Shed handling: a synchronous sample_batch answered with
  /// ServiceError{unavailable} carrying a positive retry_after_ms (the
  /// server shed the batch under load) is retried this many times, waiting
  /// a jittered interval derived from the hint between attempts. 0 turns
  /// shed retries off. A *structural* unavailable (no hint) never retries,
  /// and the wait is interruptible by stop().
  int max_unavailable_retries = 2;

  /// Upper bound on any single shed-retry wait, whatever the server hints.
  std::chrono::milliseconds retry_cap{1000};

  /// Invoked (on the reader thread, no RemoteService lock held) whenever the
  /// server answers a request with a stale_map frame — its "your routing map
  /// is out of date" veto, carrying the map it holds. The vetoed call itself
  /// fails with ServiceError{stale_map}; a cluster client installs this hook
  /// to adopt the newer map before retrying.
  std::function<void(const cluster::ShardMap&)> on_map_push;

  /// Invoked (on the reader thread, no RemoteService lock held) when the
  /// server piggybacks a map_version announce (request id 0) ahead of a
  /// response — its map advanced past what this connection last heard. A
  /// cluster client compares against its own map and pulls the full map
  /// with fetch_map when behind (anti-entropy without polling).
  std::function<void(const wire::MapVersion&)> on_map_version;
};

class RemoteService final : public SamplerService {
 public:
  /// Produces a fresh Connection per (re)connect attempt; throw
  /// ServiceError{transport} (or return nullptr) when the peer is
  /// unreachable right now.
  using ConnectionFactory = std::function<std::shared_ptr<transport::Connection>()>;

  explicit RemoteService(ConnectionFactory factory, RemoteOptions options = {});
  ~RemoteService() override;

  Fingerprint admit(const AdmitRequest& request) override;
  bool admitted(const Fingerprint& fp) const override;
  bool resident(const Fingerprint& fp) const override;
  std::int64_t prepare_count(const Fingerprint& fp) const override;
  std::int64_t draw_cursor(const Fingerprint& fp) const override;
  std::int64_t in_flight(const Fingerprint& fp) const override;
  bool drop(const Fingerprint& fp) override;

  /// Epoch-fenced drop (fenced_drop_query): the server vetoes it with
  /// ServiceError{stale_epoch} when `epoch` is behind the map it adopted.
  bool drop_fenced(const Fingerprint& fp, std::uint64_t epoch) override;

  /// The peer's admission catalog and per-entry admission state — what a
  /// standby coordinator rebuilds from during takeover.
  std::vector<Fingerprint> catalog_fingerprints() const override;
  AdmitRequest export_admit(const Fingerprint& fp) const override;
  BatchResponse sample_batch(const BatchRequest& request) override;
  std::future<BatchResponse> submit_batch(const BatchRequest& request) override;

  /// The peer's stats plus this client's own connection history: dials,
  /// reconnects, dial failures, and client-side timeouts are added into the
  /// transport block, so a stats roll-up across layers (ShardedService,
  /// ClusterService) counts every dial exactly once — at the client that
  /// made it. With stripes > 1 the per-stripe counts fold into the same
  /// totals.
  ServiceStats stats() const override;

  /// Stops the service: wakes any dial backoff immediately (the wait is a
  /// stop-interruptible condition wait, never a blind sleep), fails waiters
  /// parked on an in-progress dial with ServiceError{unavailable}, and
  /// refuses new calls the same way. Idempotent; the destructor calls it,
  /// so teardown never blocks on the backoff ladder.
  void stop();

  /// Asks the server for its merged stats rendered as scrapeable plaintext
  /// (the metrics_query/text_response pair).
  std::string metrics_text() const;

  /// Asks the server for its current cluster map (map_query). Throws
  /// ServiceError{unavailable} when the server has no map to serve.
  cluster::ShardMap fetch_map() const override;

  /// Pushes a map to the server (a coordinator's view change); true when the
  /// server accepted it. Throws ServiceError{unavailable} when the server
  /// does not accept pushes and ServiceError{stale_epoch} when the map's
  /// epoch is behind the one the server adopted (the pusher was fenced).
  bool push_map(const cluster::ShardMap& map) const override;

  /// True while at least one stripe's handshaken connection is up (a failed
  /// peer is only noticed when a call touches it).
  bool connected() const;

  /// Times a live connection was re-established after the first (tests and
  /// benches read these; both are monotone).
  std::int64_t reconnect_count() const;

  /// Connection attempts made (first dial included) and attempts that never
  /// produced a handshake. Monotone; also folded into stats().transport.
  std::int64_t dial_count() const;
  std::int64_t dial_failure_count() const;

  /// batch_chunk frames reassembled so far — proves streaming actually
  /// happened in the conformance tests.
  std::int64_t chunk_frames_received() const;

  /// Shed (`unavailable` + retry hint) responses this client retried;
  /// monotone, also folded into stats().transport.shed_retries.
  std::int64_t shed_retry_count() const;

  /// Synchronous calls that expired client-side (request_timeout elapsed
  /// with no reply); monotone, also folded into stats().transport.timeouts.
  std::int64_t timeout_count() const;

 private:
  struct Pending;
  struct Link;

  /// One connection slot: its current link (null until the first dial),
  /// the per-stripe connect gate, and the load counters the stripe picker
  /// reads. All fields are guarded by mutex_ (the vector itself carries the
  /// annotation; elements are only reached through it).
  struct Stripe {
    std::shared_ptr<Link> link;
    bool connecting = false;
    bool ever_connected = false;     // distinguishes first dial from reconnect
    std::int64_t inflight = 0;       // pendings registered on this stripe
    std::int64_t chunk_streams = 0;  // pendings mid-chunk-stream
  };

  using PendingMap = std::unordered_map<std::uint64_t, std::shared_ptr<Pending>>;

  /// Establishes stripes_[stripe].link (connect + handshake + reader spawn)
  /// under `lock` (the caller's scoped lock on mutex_), which it drops while
  /// dialing and retakes before returning — held on entry and on exit either
  /// way, which is what REQUIRES states; the definition opts its body out of
  /// analysis because the mid-flight drop of a by-reference scoped lock is
  /// beyond what the analysis tracks. Throws ServiceError{transport} after
  /// max_connect_attempts, version_mismatch immediately.
  void ensure_connected(util::MutexLock& lock, std::size_t stripe) const
      REQUIRES(mutex_);
  std::shared_ptr<Link> connect_once() const;
  void teardown_link(std::shared_ptr<Link> link) const;
  void reader_loop(std::shared_ptr<Link> link) const;
  void handle_frame(Link& link, std::uint64_t request_id, wire::Bytes message) const;

  /// Assignment policy: least-loaded stripe wins (cold stripes count as
  /// empty, so concurrency dials them lazily); a small (non-batch) query
  /// additionally bypasses stripes busy streaming chunks when a quiet one
  /// exists. Ties break on the lowest index.
  std::size_t pick_stripe(bool is_batch) const REQUIRES(mutex_);

  /// Detaches a pending from the map, keeping the owning stripe's
  /// inflight/chunk_streams accounting exact. Every erase goes through here.
  std::shared_ptr<Pending> take_pending(PendingMap::iterator it) const
      REQUIRES(mutex_);

  /// Registers a pending call and writes its request frame; returns the
  /// request id. Caller holds no lock.
  std::uint64_t send_request(const wire::Bytes& message,
                             std::shared_ptr<Pending> pending) const;

  /// Synchronous round trip for the non-batch calls: returns the raw
  /// response message (type-checked by the caller's decode).
  wire::Bytes rpc(const wire::Bytes& request) const;

  /// submit_batch body; returns the future plus the id needed to cancel on
  /// timeout.
  std::pair<std::future<BatchResponse>, std::uint64_t> submit_batch_traced(
      const BatchRequest& request) const;

  /// One sample_batch round trip (no shed retry).
  BatchResponse sample_batch_once(const BatchRequest& request) const;

  /// Jittered, stop-interruptible wait before retrying a shed batch; throws
  /// ServiceError{unavailable} when stop() lands mid-wait.
  void wait_before_retry(int hint_ms) const;

  ConnectionFactory factory_;
  RemoteOptions options_;

  /// Guards stripes_, pending_, next_request_id_, and the per-stripe
  /// connect gates. Never held while blocking on the network. Leaf in the
  /// lock order: neither stop_mutex_ nor Link::write_mutex is ever taken
  /// while holding it.
  mutable util::Mutex mutex_;
  mutable util::CondVar connect_cv_;
  mutable std::vector<Stripe> stripes_ GUARDED_BY(mutex_);
  mutable std::uint64_t next_request_id_ GUARDED_BY(mutex_) = 1;  // 0 = handshake
  mutable std::uint64_t next_generation_ GUARDED_BY(mutex_) = 1;
  mutable PendingMap pending_ GUARDED_BY(mutex_);
  mutable std::int64_t reconnects_ GUARDED_BY(mutex_) = 0;
  mutable std::int64_t chunk_frames_ GUARDED_BY(mutex_) = 0;
  mutable std::int64_t dials_ GUARDED_BY(mutex_) = 0;
  mutable std::int64_t dial_failures_ GUARDED_BY(mutex_) = 0;
  mutable std::int64_t timeouts_ GUARDED_BY(mutex_) = 0;

  /// stop() support: the flag every backoff/retry wait watches. stop_cv_
  /// pairs with stop_mutex_ (not mutex_) so a parked backoff never blocks
  /// unrelated accessors, and the dial ladder holds no service lock while
  /// it waits.
  mutable std::atomic<bool> stopping_{false};
  mutable util::Mutex stop_mutex_;
  mutable util::CondVar stop_cv_;
  mutable std::uint64_t retry_jitter_state_ GUARDED_BY(stop_mutex_) =
      0x9e3779b97f4a7c15ull;

  mutable metrics::LatencyHistogram rtt_hist_;
  mutable std::atomic<std::int64_t> shed_retries_{0};
};

/// Which Connection flavor a LoopbackShard dials for each stripe.
enum class LoopbackTransport {
  pipe,      // transport::make_pipe(): condvar-backed byte queue
  shm_ring,  // transport::make_shm_ring(): futex-backed SPSC shared ring
};

/// A complete in-process remote leg: a transport::Server serving `backend`
/// over the loopback pipe or the shared-memory ring, with a RemoteService
/// client in front — all behind the SamplerService interface, so it plugs
/// into ShardedService as a shard. This is the wiring the conformance
/// suite, the fault harness, and bench_remote_transport measure; production
/// deployments do the same with tcp_connect/TcpListener across real
/// processes (or make_shm_ring for same-host shards).
class LoopbackShard final : public SamplerService {
 public:
  explicit LoopbackShard(std::unique_ptr<SamplerService> backend,
                         transport::ServerOptions server_options = {},
                         RemoteOptions client_options = {},
                         LoopbackTransport transport_kind = LoopbackTransport::pipe);
  ~LoopbackShard() override;

  Fingerprint admit(const AdmitRequest& request) override;
  bool admitted(const Fingerprint& fp) const override;
  bool resident(const Fingerprint& fp) const override;
  std::int64_t prepare_count(const Fingerprint& fp) const override;
  std::int64_t draw_cursor(const Fingerprint& fp) const override;
  std::int64_t in_flight(const Fingerprint& fp) const override;
  bool drop(const Fingerprint& fp) override;
  bool drop_fenced(const Fingerprint& fp, std::uint64_t epoch) override;
  std::vector<Fingerprint> catalog_fingerprints() const override;
  AdmitRequest export_admit(const Fingerprint& fp) const override;
  cluster::ShardMap fetch_map() const override;
  bool push_map(const cluster::ShardMap& map) const override;
  BatchResponse sample_batch(const BatchRequest& request) override;
  std::future<BatchResponse> submit_batch(const BatchRequest& request) override;
  ServiceStats stats() const override;

  RemoteService& remote() { return *remote_; }
  SamplerService& backend() { return *backend_; }

  /// Serve threads currently tracked (live plus not-yet-reaped). Every dial
  /// reaps the threads whose connections already ended before spawning a new
  /// one, so this stays bounded under reconnect storms instead of growing by
  /// one per dial — the reconnect-storm test pins the bound.
  std::size_t tracked_server_threads() const;

  /// Severs every live server-side connection end, forcing the client to
  /// re-dial on its next call. Test hook: the reconnect-storm and
  /// per-stripe failover tests drive this instead of reaching into the
  /// transport.
  void sever_server_connections();

 private:
  /// One serve() invocation: its connection end, the thread running it, and
  /// the flag the thread sets on exit so a later dial can reap it without
  /// blocking on a live connection.
  struct ServeSlot {
    std::shared_ptr<transport::Connection> end;
    std::shared_ptr<std::atomic<bool>> done;
    std::thread thread;
  };

  std::unique_ptr<SamplerService> backend_;
  transport::Server server_;
  LoopbackTransport transport_kind_;
  mutable util::Mutex threads_mutex_;
  std::vector<ServeSlot> slots_ GUARDED_BY(threads_mutex_);
  std::unique_ptr<RemoteService> remote_;  // destroyed first: closes the pipe
};

}  // namespace cliquest::engine
