#pragma once

// Versioned byte codec for the SamplerService message set — the seam a
// remote shard plugs into.
//
// Every message travels as one self-describing buffer:
//
//   [0..3]  magic  'C' 'Q' 'W' 'F'
//   [4..5]  format version, little-endian u16 (kVersion)
//   [6]     message type tag (MessageType)
//   [7..]   payload
//
// Payload primitives are little-endian fixed-width integers, doubles as
// their IEEE-754 bit pattern (bit-exact round trip, NaN payloads included),
// strings and sequences as a u32 count followed by the elements. Graph edges
// keep their insertion order, so encode(decode(bytes)) reproduces bytes
// exactly — the byte-exactness tests rely on it.
//
// Decoding is strict: a wrong magic, tag, truncated/overlong buffer, or an
// out-of-range enum/bool/graph payload raises
// ServiceError{malformed_message}; a buffer whose version field differs from
// kVersion raises ServiceError{version_mismatch} (checked before the tag, so
// a future format bump fails with the right code rather than a parse error).
// Decoding is also allocation-safe against forged counts: a graph payload's
// vertex count is capped at 2^20 and its edge count checked against the
// bytes actually present before anything is allocated, so a tiny hostile
// buffer fails with malformed_message, not bad_alloc.

#include <cstdint>
#include <span>
#include <vector>

#include "engine/service.hpp"

namespace cliquest::engine::wire {

/// v2: per-draw stats gained schur_cache_hits/misses and service_stats the
/// Schur-cache counters (schur_cache_hits/misses/trims before
/// resident_bytes).
inline constexpr std::uint16_t kVersion = 2;

using Bytes = std::vector<std::uint8_t>;

enum class MessageType : std::uint8_t {
  graph = 1,
  options = 2,
  admit_request = 3,
  batch_request = 4,
  batch_response = 5,
  service_stats = 6,
};

/// Validates the envelope (magic, version) and returns the tag without
/// touching the payload — what a transport dispatcher switches on.
MessageType peek_type(std::span<const std::uint8_t> bytes);

Bytes encode(const graph::Graph& g);
Bytes encode(const EngineOptions& options);
Bytes encode(const AdmitRequest& request);
Bytes encode(const BatchRequest& request);
Bytes encode(const BatchResponse& response);
Bytes encode(const ServiceStats& stats);

graph::Graph decode_graph(std::span<const std::uint8_t> bytes);
EngineOptions decode_options(std::span<const std::uint8_t> bytes);
AdmitRequest decode_admit_request(std::span<const std::uint8_t> bytes);
BatchRequest decode_batch_request(std::span<const std::uint8_t> bytes);
BatchResponse decode_batch_response(std::span<const std::uint8_t> bytes);
ServiceStats decode_service_stats(std::span<const std::uint8_t> bytes);

}  // namespace cliquest::engine::wire
