#pragma once

// Versioned byte codec for the SamplerService message set — the seam a
// remote shard plugs into.
//
// Every message travels as one self-describing buffer:
//
//   [0..3]  magic  'C' 'Q' 'W' 'F'
//   [4..5]  format version, little-endian u16 (kVersion)
//   [6]     message type tag (MessageType)
//   [7..]   payload
//
// Payload primitives are little-endian fixed-width integers, doubles as
// their IEEE-754 bit pattern (bit-exact round trip, NaN payloads included),
// strings and sequences as a u32 count followed by the elements. Graph edges
// keep their insertion order, so encode(decode(bytes)) reproduces bytes
// exactly — the byte-exactness tests rely on it.
//
// Decoding is strict: a wrong magic, tag, truncated/overlong buffer, or an
// out-of-range enum/bool/graph payload raises
// ServiceError{malformed_message}; a buffer whose version field differs from
// kVersion raises ServiceError{version_mismatch} (checked before the tag, so
// a future format bump fails with the right code rather than a parse error).
// Decoding is also allocation-safe against forged counts: a graph payload's
// vertex count is capped at 2^20 and its edge count checked against the
// bytes actually present before anything is allocated, so a tiny hostile
// buffer fails with malformed_message, not bad_alloc.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "engine/cluster/shard_map.hpp"
#include "engine/service.hpp"

namespace cliquest::engine::wire {

/// v2: per-draw stats gained schur_cache_hits/misses and service_stats the
/// Schur-cache counters (schur_cache_hits/misses/trims before
/// resident_bytes).
/// v3: the remote-transport RPC set (engine/transport.hpp) — handshake
/// `hello`, typed `error_response`, per-call query/response messages, and
/// the streaming `batch_chunk` variant of batch_response for large k.
/// v4: the cluster control plane (engine/cluster) — `shard_map` (the
/// versioned weighted member list, both a map_query response and a
/// coordinator push), `map_query`, and `stale_map` (the view-change answer
/// to a batch routed with an old map, carrying the current map); the
/// migration queries cursor_query/drop_query/in_flight_query;
/// batch_request gained first_draw_index (explicit replica-safe draw
/// ranges), admit_request gained first_draw_index (cursor handoff), and
/// service_stats the client-side TransportStats block.
/// v5: the serving-edge hardening set — error_response gained retry_after_ms
/// (the load-shedding hint after the code byte), pool stats gained
/// shed_batches/shed_draws and transport stats shed_retries, service_stats
/// gained the metrics block (sparse latency histograms + queue gauges,
/// engine/metrics.hpp), and the scrape pair `metrics_query`/`text_response`
/// (a plaintext rendering of the stats for monitoring systems).
/// v6: coordinator HA + anti-entropy — shard_map gained the coordinator
/// lease `epoch` (after version; supersession is lexicographic on
/// (epoch, version)), admit_request gained coordinator_epoch (-1 = not
/// coordinator-originated), the error codes gained stale_epoch (a fenced
/// coordinator's veto), transport stats gained map_refreshes/map_pulls
/// (anti-entropy convergence counters), and the message set gained
/// `map_version` (a server's piggybacked map announce, request id 0),
/// `fenced_drop_query` (drop carrying the coordinator's epoch),
/// `catalog_query`/`catalog_response` (the admitted-fingerprint list a
/// standby coordinator rebuilds its catalog from), and
/// `admit_export_query` (an entry's graph + options + cursor, answered with
/// an admit_request frame).
/// v7: the striped-data-plane sweep — transport stats gained `timeouts`
/// (synchronous calls that expired client-side; silent expiry was
/// previously invisible in every counter). Connection striping and the
/// shared-memory ring are byte-compatible otherwise: a striped client
/// speaks the same frames per connection, just over several of them.
inline constexpr std::uint16_t kVersion = 7;

using Bytes = std::vector<std::uint8_t>;

enum class MessageType : std::uint8_t {
  graph = 1,
  options = 2,
  admit_request = 3,
  batch_request = 4,
  batch_response = 5,
  service_stats = 6,
  // v3 transport messages. Requests a server dispatches on: admit_request,
  // batch_request, and the query tags below; everything else is a response.
  hello = 7,
  error_response = 8,
  fingerprint_response = 9,
  bool_response = 10,
  count_response = 11,
  stats_query = 12,
  admitted_query = 13,
  resident_query = 14,
  prepare_count_query = 15,
  batch_chunk = 16,
  // v4 cluster messages. shard_map doubles as the map_query response and as
  // a coordinator's push request (the server's map_sink absorbs it);
  // stale_map is only ever a response.
  shard_map = 17,
  map_query = 18,
  stale_map = 19,
  cursor_query = 20,
  drop_query = 21,
  in_flight_query = 22,
  // v5 observability messages: metrics_query asks a server for its merged
  // stats rendered as scrapeable plaintext; text_response carries the text.
  metrics_query = 23,
  text_response = 24,
  // v6 HA / anti-entropy messages. map_version is the only unsolicited
  // frame in the protocol: a server piggybacks it (request id 0) ahead of a
  // response whenever its map advanced since it last told this connection,
  // so clients detect staleness without polling. fenced_drop_query is the
  // coordinator's epoch-fenced drop; catalog_query/catalog_response and
  // admit_export_query are the standby-takeover catalog handoff
  // (admit_export_query is answered with an admit_request frame whose
  // first_draw_index is the entry's live cursor).
  map_version = 25,
  fenced_drop_query = 26,
  catalog_query = 27,
  catalog_response = 28,
  admit_export_query = 29,
};

/// Handshake message, the first frame in each direction of a transport
/// connection (engine/transport.hpp). The envelope's version field is what
/// rejects foreign builds (version_mismatch before any payload parse); the
/// payload advertises per-peer limits so both sides can negotiate framing:
/// max_frame_bytes is the sender's receive bound — the peer must not emit a
/// larger frame (0 = the default bound) — and the effective batch-chunk
/// size is the smaller nonzero advertisement (0 = that peer does not speak
/// chunked responses).
struct Hello {
  std::uint32_t max_frame_bytes = 0;
  std::uint32_t batch_chunk_trees = 0;
};

/// A ServiceError crossing the wire: the code survives the hop typed, the
/// detail rides along for humans. retry_after_ms (v5) is the load-shedding
/// hint — positive when an `unavailable` was a shed with an estimated
/// time-to-capacity, 0 otherwise.
struct ErrorResponse {
  ServiceErrorCode code = ServiceErrorCode::unavailable;
  std::int32_t retry_after_ms = 0;
  std::string detail;
};

/// A server's piggybacked map announce (v6): just the (version, epoch) pair
/// of the map the server currently routes by, cheap enough to ride ahead of
/// any response. A client whose own map is behind pulls the full map with
/// map_query from whoever announced — anti-entropy without a coordinator
/// round-trip.
struct MapVersion {
  std::uint64_t version = 0;
  std::uint64_t epoch = 0;

  bool operator==(const MapVersion&) const = default;
};

/// One slice of a streamed BatchResponse: `seq` counts chunks within the
/// request from 0 and the receiver re-assembles trees in seq order; the
/// terminal (non-chunk) batch_response frame carries the report and any
/// trees not shipped in chunks.
struct BatchChunk {
  Fingerprint fingerprint;
  std::uint32_t seq = 0;
  std::vector<graph::TreeEdges> trees;
};

/// Validates the envelope (magic, version) and returns the tag without
/// touching the payload — what a transport dispatcher switches on.
MessageType peek_type(std::span<const std::uint8_t> bytes);

Bytes encode(const graph::Graph& g);
Bytes encode(const EngineOptions& options);
Bytes encode(const AdmitRequest& request);
Bytes encode(const BatchRequest& request);
Bytes encode(const BatchResponse& response);
Bytes encode(const ServiceStats& stats);
Bytes encode(const Hello& hello);
Bytes encode(const ErrorResponse& error);
Bytes encode(const BatchChunk& chunk);
Bytes encode(const cluster::ShardMap& map);  // tag shard_map

/// The same ShardMap payload under the stale_map tag: the serving side's
/// "your map is out of date, here is mine" answer to a misrouted batch.
Bytes encode_stale_map(const cluster::ShardMap& map);
Bytes encode_map_query();

/// Encodes a batch_chunk directly from a tree range — the server's
/// streaming path slices the response's tree list without copying it into a
/// BatchChunk first.
Bytes encode_batch_chunk(const Fingerprint& fp, std::uint32_t seq,
                         std::span<const graph::TreeEdges> trees);

/// Single-value responses and the fingerprint-keyed queries share payload
/// shapes, so they encode through named helpers instead of overloads.
/// `tag` must be one of the fingerprint queries (admitted_query,
/// resident_query, prepare_count_query, cursor_query, drop_query,
/// in_flight_query); anything else throws ServiceError{invalid_request}.
Bytes encode_fingerprint_response(const Fingerprint& fp);
Bytes encode_bool_response(bool value);
Bytes encode_count_response(std::int64_t value);
Bytes encode_stats_query();
Bytes encode_query(MessageType tag, const Fingerprint& fp);
Bytes encode_metrics_query();
Bytes encode_text_response(const std::string& text);
Bytes encode(const MapVersion& announce);
Bytes encode_fenced_drop(const Fingerprint& fp, std::uint64_t epoch);
Bytes encode_catalog_query();
Bytes encode_catalog_response(const std::vector<Fingerprint>& fingerprints);

graph::Graph decode_graph(std::span<const std::uint8_t> bytes);
EngineOptions decode_options(std::span<const std::uint8_t> bytes);
AdmitRequest decode_admit_request(std::span<const std::uint8_t> bytes);
BatchRequest decode_batch_request(std::span<const std::uint8_t> bytes);
BatchResponse decode_batch_response(std::span<const std::uint8_t> bytes);
ServiceStats decode_service_stats(std::span<const std::uint8_t> bytes);
Hello decode_hello(std::span<const std::uint8_t> bytes);
ErrorResponse decode_error_response(std::span<const std::uint8_t> bytes);
BatchChunk decode_batch_chunk(std::span<const std::uint8_t> bytes);
Fingerprint decode_fingerprint_response(std::span<const std::uint8_t> bytes);
bool decode_bool_response(std::span<const std::uint8_t> bytes);
std::int64_t decode_count_response(std::span<const std::uint8_t> bytes);
void decode_stats_query(std::span<const std::uint8_t> bytes);
Fingerprint decode_query(std::span<const std::uint8_t> bytes, MessageType tag);
cluster::ShardMap decode_shard_map(std::span<const std::uint8_t> bytes);
cluster::ShardMap decode_stale_map(std::span<const std::uint8_t> bytes);
void decode_map_query(std::span<const std::uint8_t> bytes);
void decode_metrics_query(std::span<const std::uint8_t> bytes);
std::string decode_text_response(std::span<const std::uint8_t> bytes);
MapVersion decode_map_version(std::span<const std::uint8_t> bytes);

/// Decodes a fenced_drop_query into its (fingerprint, epoch) pair.
std::pair<Fingerprint, std::uint64_t> decode_fenced_drop(
    std::span<const std::uint8_t> bytes);
void decode_catalog_query(std::span<const std::uint8_t> bytes);
std::vector<Fingerprint> decode_catalog_response(
    std::span<const std::uint8_t> bytes);

}  // namespace cliquest::engine::wire
