#pragma once

// SamplerService: the transport-agnostic serving surface.
//
// The pool (engine/pool.hpp) is a concrete in-process object; SamplerService
// is the abstraction a client actually needs from a tree-sampling server,
// phrased entirely in typed messages so the same surface works in-process,
// across shards, or (future) across a wire:
//
//   AdmitRequest  -> Fingerprint       admit a graph + options
//   BatchRequest  -> BatchResponse     draw k trees against a fingerprint
//   (stats)       -> ServiceStats      merged serving counters
//   any failure   -> ServiceError      machine-readable error code
//
// Every message has a byte encoding in engine/wire.hpp; a remote transport
// is "encode request, move bytes, decode, call the same virtuals" — routing
// and serving semantics never change.
//
// Two implementations:
//   - LocalService: retrofits SamplerPool behind the interface. Keeps the
//     pool's LRU/byte-budget/replay semantics exactly; translates
//     admission-time EngineConfigError into ServiceError{invalid_config}.
//   - ShardedService: owns N child services and routes each fingerprint to
//     one of them by rendezvous (highest-random-weight) hashing, so the
//     shard map is stable, needs no shared state, and moves a minimal set
//     of keys when the shard count changes. Batches fan out concurrently
//     through the children's own worker pools; stats merge across shards;
//     each child keeps its own per-fingerprint draw cursors, so a batch
//     sequence replays identically no matter how many shards serve it.

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "engine/cluster/shard_map.hpp"
#include "engine/errors.hpp"
#include "engine/fingerprint.hpp"
#include "engine/metrics.hpp"
#include "engine/pool.hpp"
#include "util/sync.hpp"

namespace cliquest::engine {

/// Admission message: a graph plus the engine options its sampler will use.
/// first_draw_index seeds the entry's draw cursor — 0 for fresh admissions;
/// a cluster migration admits on the new owner at the source's exported
/// cursor, so the (seed, index) streams continue where the old owner
/// stopped. Re-admission never moves a cursor backwards.
struct AdmitRequest {
  graph::Graph graph;
  EngineOptions options;
  std::int64_t first_draw_index = 0;
  /// The coordinator lease epoch this admission was issued under, or -1 for
  /// an admission that is not coordinator-originated (a client admit, a
  /// local pool). Shards with an epoch guard veto admissions from a lower
  /// epoch than the map they already adopted (ServiceError{stale_epoch}), so
  /// a fenced coordinator cannot seed entries mid-zombie.
  std::int64_t coordinator_epoch = -1;
};

/// Serving message: draw draw_count trees against an admitted fingerprint.
/// first_draw_index < 0 (the default) lets the serving pool assign the range
/// from its own cursor, as always. A non-negative value pins the range
/// [first_draw_index, first_draw_index + draw_count) explicitly — the
/// cluster layer reserves ranges against its own cursor so a batch retried
/// on a replica after a transport failure draws the identical trees.
struct BatchRequest {
  Fingerprint fingerprint;
  int draw_count = 0;
  std::int64_t first_draw_index = -1;
};

/// A served batch: the trees + report, plus the serving metadata needed to
/// replay it ([first_draw_index, first_draw_index + k) on the entry's
/// (seed, index) streams) and to attribute it (cache hit, serving shard).
/// The `shard` field is stamped at the source by the serving pool (see
/// PoolOptions::shard_id), not rewritten by routers — that keeps every
/// submit_batch future promise-backed (wait_for readiness polling works),
/// with no deferred adapter layered on top.
using BatchResponse = PoolBatchResult;

/// Serving counters: the service-wide totals plus one entry per shard (a
/// LocalService reports itself as its only shard). Counters in totals are
/// sums across shards — including resident_bytes and peak_resident_bytes,
/// so totals.peak is a sum-of-peaks upper bound; the per-shard
/// "peak <= budget" invariant lives in shards[], where each budget applies.
/// Client-side connection-churn counters, summed like the pool counters
/// when stats merge across layers. A RemoteService adds its own dial
/// history to the stats it reads back from its peer; a cluster layer adds
/// the failovers it performed. All monotone — tests observe dial churn and
/// failover decisions here instead of sleeping.
struct TransportStats {
  std::int64_t dials = 0;          // connection attempts, first dial included
  std::int64_t reconnects = 0;     // live connections re-established
  std::int64_t dial_failures = 0;  // attempts that did not yield a handshake
  std::int64_t failovers = 0;      // batches re-routed to a replica
  std::int64_t shed_retries = 0;   // shed (`unavailable` + retry_after_ms)
                                   // responses retried on the same target
  std::int64_t map_refreshes = 0;  // shard maps adopted after an anti-entropy
                                   // signal (piggybacked map_version announce)
  std::int64_t map_pulls = 0;      // periodic backstop map pulls attempted
                                   // (MapWatch's jittered timer)
  std::int64_t timeouts = 0;       // synchronous calls that expired
                                   // client-side (request_timeout elapsed
                                   // with no reply) — silent expiry is
                                   // otherwise invisible in any counter
};

struct ServiceStats {
  PoolStats totals;
  TransportStats transport;
  /// Latency histograms and queue/in-flight gauges (engine/metrics.hpp),
  /// merged additively across shards/replicas like the counters.
  metrics::MetricsSnapshot metrics;
  std::vector<PoolStats> shards;
};

class SamplerService {
 public:
  virtual ~SamplerService();

  SamplerService() = default;
  SamplerService(const SamplerService&) = delete;
  SamplerService& operator=(const SamplerService&) = delete;

  /// Admits request.graph under its structural fingerprint. Idempotent (the
  /// first admission's options win). Throws ServiceError{invalid_config} on
  /// invalid graphs/options.
  virtual Fingerprint admit(const AdmitRequest& request) = 0;

  virtual bool admitted(const Fingerprint& fp) const = 0;

  /// True while the fingerprint's prepared sampler is retained somewhere in
  /// the service.
  virtual bool resident(const Fingerprint& fp) const = 0;

  /// Times the fingerprint's precomputation has been built. Throws
  /// ServiceError{unknown_fingerprint} on unknown fingerprints.
  virtual std::int64_t prepare_count(const Fingerprint& fp) const = 0;

  // Cluster control-plane hooks (engine/cluster): the draw cursor a
  // migration hands off, the in-flight count a drain polls, and the drop
  // that retires a migrated entry. Defaults throw ServiceError{unavailable}
  // so decorators and test doubles that predate the cluster layer keep
  // compiling; every shipped service implements them.

  /// The entry's next unreserved draw index. Throws
  /// ServiceError{unknown_fingerprint} on unknown fingerprints.
  virtual std::int64_t draw_cursor(const Fingerprint& fp) const;

  /// Batches reserved against the fingerprint but not yet completed. Throws
  /// ServiceError{unknown_fingerprint} on unknown fingerprints.
  virtual std::int64_t in_flight(const Fingerprint& fp) const;

  /// Forgets the fingerprint entirely — graph, options, cursor, residency.
  /// Returns false when it was never admitted. Batches already in flight
  /// still complete (they hold their own references).
  virtual bool drop(const Fingerprint& fp);

  /// Epoch-fenced drop: a coordinator retiring a migrated entry passes its
  /// lease epoch so a shard that already adopted a newer epoch can veto the
  /// call (ServiceError{stale_epoch}) — a fenced zombie coordinator must not
  /// tear entries it no longer owns. The default forwards to drop(): an
  /// in-process service has no fencing edge, the veto lives on the
  /// transport server (ServerOptions::epoch_guard); RemoteService carries
  /// the epoch across the wire.
  virtual bool drop_fenced(const Fingerprint& fp, std::uint64_t epoch);

  /// Every admitted fingerprint — the catalog a standby coordinator rebuilds
  /// from live shards during takeover. Default throws
  /// ServiceError{unavailable}.
  virtual std::vector<Fingerprint> catalog_fingerprints() const;

  /// The entry's admission message, re-exported: graph + options with
  /// first_draw_index at the entry's live cursor, so re-admitting it
  /// elsewhere continues the (seed, index) streams. Throws
  /// ServiceError{unknown_fingerprint}; default throws
  /// ServiceError{unavailable}.
  virtual AdmitRequest export_admit(const Fingerprint& fp) const;

  /// The cluster shard map this service routes by (a server answers its
  /// MapWatch's copy; ClusterService answers its own). Default throws
  /// ServiceError{unavailable} — pre-cluster services have no map.
  virtual cluster::ShardMap fetch_map() const;

  /// Offers a map for adoption; returns true when the map superseded the
  /// held one. A shard behind an epoch guard throws
  /// ServiceError{stale_epoch} on a push from a fenced coordinator. Default
  /// throws ServiceError{unavailable}.
  virtual bool push_map(const cluster::ShardMap& map) const;

  /// Draws request.draw_count trees synchronously. Throws
  /// ServiceError{unknown_fingerprint, invalid_request}.
  virtual BatchResponse sample_batch(const BatchRequest& request) = 0;

  /// Async variant: the draw-index range is reserved at submission, so
  /// submission order alone fixes every draw's (seed, index) stream. All
  /// errors — including unknown fingerprints — surface through the future
  /// as ServiceError, never synchronously: the async surface has exactly
  /// one error channel, which is what a transport needs.
  virtual std::future<BatchResponse> submit_batch(const BatchRequest& request) = 0;

  /// Fans a request list out concurrently (shard-parallel on sharded
  /// services) and returns the futures in request order.
  std::vector<std::future<BatchResponse>> submit_all(
      const std::vector<BatchRequest>& requests);

  /// Deadline variant: any response not ready within `deadline` of
  /// submission fails its future with ServiceError{timeout}; responses that
  /// do land in time are unaffected and still delivered as they complete.
  /// One stuck or unreachable shard therefore cannot wedge the fan-out —
  /// the serving-path property the fault-injection harness pins down. The
  /// returned futures stay promise-backed (wait_for readiness polling
  /// works). Draw-index ranges are reserved at submission as always, so a
  /// timed-out batch still consumed its range: replaying the sequence after
  /// a timeout keeps every other batch's streams unchanged.
  std::vector<std::future<BatchResponse>> submit_all(
      const std::vector<BatchRequest>& requests, std::chrono::milliseconds deadline);

  virtual ServiceStats stats() const = 0;

 private:
  /// Deadline watchers from submit_all: async tasks that forward child
  /// futures into the wrapper promises (or expire them). Finished watchers
  /// are pruned on the next call; the rest are joined in ~SamplerService.
  util::Mutex watchers_mutex_;
  std::vector<std::future<void>> watchers_ GUARDED_BY(watchers_mutex_);
};

/// SamplerPool behind the service interface. The pool's semantics are the
/// service's semantics: structural-fingerprint admission, byte-budgeted LRU
/// residency, submission-time draw-cursor reservation.
class LocalService : public SamplerService {
 public:
  explicit LocalService(PoolOptions options = {});

  Fingerprint admit(const AdmitRequest& request) override;
  bool admitted(const Fingerprint& fp) const override;
  bool resident(const Fingerprint& fp) const override;
  std::int64_t prepare_count(const Fingerprint& fp) const override;
  std::int64_t draw_cursor(const Fingerprint& fp) const override;
  std::int64_t in_flight(const Fingerprint& fp) const override;
  bool drop(const Fingerprint& fp) override;
  std::vector<Fingerprint> catalog_fingerprints() const override;
  AdmitRequest export_admit(const Fingerprint& fp) const override;
  BatchResponse sample_batch(const BatchRequest& request) override;
  std::future<BatchResponse> submit_batch(const BatchRequest& request) override;
  ServiceStats stats() const override;

  /// The underlying pool, for residency introspection in tests and benches.
  SamplerPool& pool() { return pool_; }
  const SamplerPool& pool() const { return pool_; }

 private:
  SamplerPool pool_;
};

/// Fingerprint-sharded routing over pluggable child services.
class ShardedService : public SamplerService {
 public:
  /// Takes ownership of the shards; requires at least one.
  explicit ShardedService(std::vector<std::unique_ptr<SamplerService>> shards);

  /// Convenience: n LocalService shards, each with its own copy of options
  /// (worker threads and byte budget are per shard) and its shard_id set to
  /// its index, so responses report the serving shard.
  ShardedService(int shard_count, const PoolOptions& options);

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// The shard index fp routes to: rendezvous hashing — argmax over shards
  /// of h(fp, shard) — so every service instance with the same shard count
  /// agrees on the owner without any coordination state.
  int shard_for(const Fingerprint& fp) const;

  /// Direct access to a child shard (tests, benches, stats drill-down).
  SamplerService& shard(int index) {
    return *shards_.at(static_cast<std::size_t>(index));
  }

  Fingerprint admit(const AdmitRequest& request) override;
  bool admitted(const Fingerprint& fp) const override;
  bool resident(const Fingerprint& fp) const override;
  std::int64_t prepare_count(const Fingerprint& fp) const override;
  std::int64_t draw_cursor(const Fingerprint& fp) const override;
  std::int64_t in_flight(const Fingerprint& fp) const override;
  bool drop(const Fingerprint& fp) override;
  std::vector<Fingerprint> catalog_fingerprints() const override;
  AdmitRequest export_admit(const Fingerprint& fp) const override;
  BatchResponse sample_batch(const BatchRequest& request) override;
  std::future<BatchResponse> submit_batch(const BatchRequest& request) override;
  ServiceStats stats() const override;

 private:
  std::vector<std::unique_ptr<SamplerService>> shards_;
};

}  // namespace cliquest::engine
