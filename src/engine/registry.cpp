#include "engine/registry.hpp"

#include <stdexcept>
#include <utility>

#include "engine/backends.hpp"

namespace cliquest::engine {

SamplerRegistry::SamplerRegistry() {
  add("congested_clique", [](graph::Graph g, const EngineOptions& options) {
    return std::unique_ptr<SpanningTreeSampler>(
        new CongestedCliqueBackend(std::move(g), options));
  });
  add("doubling", [](graph::Graph g, const EngineOptions& options) {
    return std::unique_ptr<SpanningTreeSampler>(
        new DoublingBackend(std::move(g), options));
  });
  add("wilson", [](graph::Graph g, const EngineOptions& options) {
    return std::unique_ptr<SpanningTreeSampler>(
        new WilsonBackend(std::move(g), options));
  });
  add("aldous_broder", [](graph::Graph g, const EngineOptions& options) {
    return std::unique_ptr<SpanningTreeSampler>(
        new AldousBroderBackend(std::move(g), options));
  });
}

SamplerRegistry& SamplerRegistry::instance() {
  static SamplerRegistry registry;
  return registry;
}

void SamplerRegistry::add(std::string name, Factory factory) {
  const util::MutexLock lock(mutex_);
  for (const auto& [registered, existing] : factories_)
    if (registered == name)
      throw std::invalid_argument("SamplerRegistry: backend \"" + name +
                                  "\" is already registered");
  factories_.emplace_back(std::move(name), std::move(factory));
}

SamplerRegistry::Factory SamplerRegistry::find_factory(std::string_view name) const {
  const util::MutexLock lock(mutex_);
  for (const auto& [registered, factory] : factories_)
    if (registered == name) return factory;
  return nullptr;
}

std::unique_ptr<SpanningTreeSampler> SamplerRegistry::create(
    std::string_view name, graph::Graph g, EngineOptions options) const {
  // The factory is copied out under the lock and invoked outside it, so
  // slow sampler construction never blocks other lookups.
  if (const Factory factory = find_factory(name)) {
    // Keep options.backend coherent with the chosen factory when the name
    // matches a built-in; custom registrations keep the caller's value.
    for (Backend backend : all_backends())
      if (backend_name(backend) == name) options.backend = backend;
    return factory(std::move(g), options);
  }
  std::string known;
  for (const std::string& n : names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("SamplerRegistry: unknown backend \"" +
                              std::string(name) + "\" (registered: " + known + ")");
}

std::unique_ptr<SpanningTreeSampler> SamplerRegistry::create(
    Backend backend, graph::Graph g, EngineOptions options) const {
  options.backend = backend;
  return create(backend_name(backend), std::move(g), std::move(options));
}

bool SamplerRegistry::contains(std::string_view name) const {
  return find_factory(name) != nullptr;
}

std::vector<std::string> SamplerRegistry::names() const {
  const util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<SpanningTreeSampler> make_sampler(graph::Graph g,
                                                  const EngineOptions& options) {
  return SamplerRegistry::instance().create(options.backend, std::move(g), options);
}

std::unique_ptr<SpanningTreeSampler> make_sampler(std::string_view backend,
                                                  graph::Graph g,
                                                  EngineOptions options) {
  return SamplerRegistry::instance().create(backend, std::move(g), std::move(options));
}

}  // namespace cliquest::engine
