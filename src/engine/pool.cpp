#include "engine/pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "engine/errors.hpp"
#include "engine/registry.hpp"

namespace cliquest::engine {

/// Pool-side state for one admitted graph. fingerprint/graph/options are
/// immutable after admission; everything else is guarded by the pool mutex,
/// except that build_mutex alone serializes the build-and-prepare of
/// sampler (which must not run under the pool mutex, so hot entries keep
/// serving while a cold one prepares).
struct SamplerPool::Entry {
  Fingerprint fingerprint;
  /// The admitted graph. After the first build this aliases the sampler's
  /// own immutable copy (graph_handle()), so a resident entry holds one
  /// graph copy in total, and that copy is what memory_bytes() charges.
  std::shared_ptr<const graph::Graph> graph;
  EngineOptions options;

  util::Mutex build_mutex;
  std::shared_ptr<SpanningTreeSampler> sampler;  // null until built / after eviction
  std::size_t bytes = 0;                         // charged while resident
  bool is_resident = false;
  std::list<Fingerprint>::iterator lru_it;

  std::int64_t next_index = 0;  // draw cursor: batches reserve [next, next + k)
  std::int64_t prepares = 0;    // precomputation builds (eviction resets
                                // sampler, not this)
  std::int64_t in_flight = 0;   // reserved batches not yet completed
};

SamplerPool::SamplerPool(PoolOptions options) : options_(std::move(options)) {
  if (options_.workers < 0)
    throw EngineConfigError({"SamplerPool: workers must be >= 0, got " +
                             std::to_string(options_.workers)});
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

SamplerPool::~SamplerPool() { close(); }

void SamplerPool::close() {
  std::vector<std::thread> workers;
  {
    const util::MutexLock lock(mutex_);
    stopping_ = true;
    // Swapping the workers out makes close() idempotent and pins the
    // submit_batch dispatch: a post-close submit sees stopping_ (typed
    // unavailable through its future), never the workers_.empty() inline
    // path.
    workers.swap(workers_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers) worker.join();
}

Fingerprint SamplerPool::admit(const graph::Graph& g) {
  return admit(g, options_.engine);
}

Fingerprint SamplerPool::admit(const graph::Graph& g, EngineOptions options,
                               std::int64_t first_draw_index) {
  if (first_draw_index < 0)
    throw EngineConfigError({"SamplerPool: first_draw_index must be >= 0, got " +
                             std::to_string(first_draw_index)});
  const Fingerprint fp = fingerprint_graph(g);
  {
    const util::MutexLock lock(mutex_);
    const auto it = entries_.find(fp);
    if (it != entries_.end()) {
      // Idempotent; first admission's options win — but a migration handoff
      // may still push the cursor forward (never backwards).
      it->second->next_index = std::max(it->second->next_index, first_draw_index);
      return fp;
    }
  }
  // Validate outside the lock (is_connected is O(n + m)) with exactly the
  // checks sampler construction applies, so a worker never trips over a bad
  // graph long after admit() returned.
  std::vector<std::string> errors =
      SpanningTreeSampler::validation_errors(g, options);
  if (!errors.empty()) throw EngineConfigError(std::move(errors));

  auto entry = std::make_shared<Entry>();
  entry->fingerprint = fp;
  entry->graph = std::make_shared<const graph::Graph>(g);
  entry->options = std::move(options);
  entry->next_index = first_draw_index;

  const util::MutexLock lock(mutex_);
  const auto [it, inserted] = entries_.emplace(fp, std::move(entry));
  if (inserted)
    ++stats_.admissions;
  else
    it->second->next_index = std::max(it->second->next_index, first_draw_index);
  return fp;
}

bool SamplerPool::admitted(const Fingerprint& fp) const {
  const util::MutexLock lock(mutex_);
  return entries_.count(fp) > 0;
}

bool SamplerPool::resident(const Fingerprint& fp) const {
  const util::MutexLock lock(mutex_);
  const auto it = entries_.find(fp);
  return it != entries_.end() && it->second->is_resident;
}

std::int64_t SamplerPool::prepare_count(const Fingerprint& fp) const {
  const util::MutexLock lock(mutex_);
  return find_locked(fp)->prepares;
}

std::int64_t SamplerPool::draw_cursor(const Fingerprint& fp) const {
  const util::MutexLock lock(mutex_);
  return find_locked(fp)->next_index;
}

std::int64_t SamplerPool::in_flight(const Fingerprint& fp) const {
  const util::MutexLock lock(mutex_);
  return find_locked(fp)->in_flight;
}

bool SamplerPool::drop(const Fingerprint& fp) {
  const util::MutexLock lock(mutex_);
  const auto it = entries_.find(fp);
  if (it == entries_.end()) return false;
  const std::shared_ptr<Entry>& entry = it->second;
  if (entry->is_resident) {
    lru_.erase(entry->lru_it);
    resident_bytes_ -= entry->bytes;
    entry->bytes = 0;
    entry->is_resident = false;
    // Batches in flight share ownership of the sampler; the precomputation
    // is freed when the last of them completes.
    entry->sampler.reset();
  }
  entries_.erase(it);
  return true;
}

std::vector<Fingerprint> SamplerPool::admitted_fingerprints() const {
  const util::MutexLock lock(mutex_);
  std::vector<Fingerprint> fingerprints;
  fingerprints.reserve(entries_.size());
  for (const auto& [fp, entry] : entries_) fingerprints.push_back(fp);
  return fingerprints;
}

std::pair<graph::Graph, EngineOptions> SamplerPool::admitted_entry(
    const Fingerprint& fp) const {
  const util::MutexLock lock(mutex_);
  const std::shared_ptr<Entry> entry = find_locked(fp);
  // graph and options are immutable after admission (see Entry), so copying
  // them out under mutex_ is safe even while a build holds build_mutex.
  return {*entry->graph, entry->options};
}

std::shared_ptr<SamplerPool::Entry> SamplerPool::find_locked(
    const Fingerprint& fp) const {
  const auto it = entries_.find(fp);
  if (it == entries_.end())
    throw ServiceError(ServiceErrorCode::unknown_fingerprint,
                       "SamplerPool: unknown fingerprint " + fp.to_string() +
                           " (admit the graph first)");
  return it->second;
}

std::int64_t SamplerPool::reserve_locked(Entry& entry, int k,
                                         std::int64_t first_index) {
  ++entry.in_flight;
  pending_draws_ += k;
  if (first_index < 0) {
    // Pool-assigned range: consume the cursor.
    const std::int64_t first = entry.next_index;
    entry.next_index += k;
    return first;
  }
  // Caller-pinned range (cluster routing): replays redraw identical trees,
  // and the cursor only ever moves forward.
  entry.next_index = std::max(entry.next_index, first_index + k);
  return first_index;
}

void SamplerPool::check_admission_locked(int k, bool queued) {
  if (stopping_)
    throw ServiceError(ServiceErrorCode::unavailable,
                       "SamplerPool: the pool is closed");
  if (queued && options_.max_pending_batches > 0 &&
      queue_.size() >= options_.max_pending_batches) {
    ++stats_.shed_batches;
    stats_.shed_draws += k;
    throw ServiceError(ServiceErrorCode::unavailable,
                       "SamplerPool: shed — " + std::to_string(queue_.size()) +
                           " batches pending at bound " +
                           std::to_string(options_.max_pending_batches),
                       retry_hint_ms_locked());
  }
  if (options_.max_pending_draws > 0 && pending_draws_ > 0 &&
      pending_draws_ + k > options_.max_pending_draws) {
    ++stats_.shed_batches;
    stats_.shed_draws += k;
    throw ServiceError(ServiceErrorCode::unavailable,
                       "SamplerPool: shed — " + std::to_string(pending_draws_) +
                           " draws in flight, " + std::to_string(k) +
                           " more would pass bound " +
                           std::to_string(options_.max_pending_draws),
                       retry_hint_ms_locked());
  }
}

int SamplerPool::retry_hint_ms_locked() const {
  // Expected time for the backlog ahead of the caller to drain: mean batch
  // serve time × (queued batches + the one in the way) / workers. Before any
  // latency history exists, suggest a conservative 50ms.
  const double mean_us = batch_serve_hist_.mean_micros();
  if (mean_us <= 0.0) return 50;
  const double workers = static_cast<double>(std::max(options_.workers, 1));
  const double backlog = static_cast<double>(queue_.size()) + 1.0;
  const double hint_ms = mean_us * backlog / workers / 1000.0;
  return static_cast<int>(std::clamp(hint_ms, 1.0, 10000.0));
}

void SamplerPool::touch_locked(Entry& entry) {
  if (!entry.is_resident) return;
  lru_.splice(lru_.end(), lru_, entry.lru_it);  // move to hottest position
}

void SamplerPool::evict_to_budget_locked() {
  // Pass 1: transient caches evict before samplers. Coldest first, each
  // resident entry's Schur cache is dropped (its prepare() precomputation
  // stays) until the budget holds — an entry whose cache grew past the
  // budget sheds the growth instead of flushing a whole prepared sampler.
  for (auto it = lru_.begin();
       resident_bytes_ > options_.memory_budget_bytes && it != lru_.end(); ++it) {
    const std::shared_ptr<Entry>& entry = entries_.at(*it);
    if (entry->sampler == nullptr) continue;
    if (entry->sampler->trim_transient_cache() == 0) continue;
    ++stats_.schur_cache_trims;
    const std::size_t now = entry->sampler->memory_bytes();
    resident_bytes_ = resident_bytes_ - entry->bytes + now;
    entry->bytes = now;
  }
  // Pass 2: evict whole samplers, coldest first.
  while (resident_bytes_ > options_.memory_budget_bytes && !lru_.empty()) {
    const std::shared_ptr<Entry> coldest = entries_.at(lru_.front());
    lru_.pop_front();
    coldest->is_resident = false;
    resident_bytes_ -= coldest->bytes;
    coldest->bytes = 0;
    // In-flight batches keep their own shared_ptr; the tables are freed when
    // the last of them finishes.
    coldest->sampler.reset();
    ++stats_.evictions;
  }
}

PoolBatchResult SamplerPool::serve(const std::shared_ptr<Entry>& entry,
                                   std::int64_t first_index, int k) {
  const auto serve_start = std::chrono::steady_clock::now();
  // The in-flight counts were taken at reservation; release them however
  // this batch ends (a migration drain polls entry in_flight to zero before
  // dropping; pending_draws_ is what max_pending_draws bounds).
  struct InFlightGuard {
    SamplerPool* pool;
    Entry* entry;
    int count;
    ~InFlightGuard() {
      const util::MutexLock lock(pool->mutex_);
      --entry->in_flight;
      pool->pending_draws_ -= count;
    }
  } in_flight_guard{this, entry.get(), k};

  std::shared_ptr<SpanningTreeSampler> sampler;
  bool hit = true;
  {
    const util::MutexLock lock(mutex_);
    sampler = entry->sampler;
    if (sampler != nullptr) touch_locked(*entry);
  }
  if (sampler == nullptr) {
    // Cold entry: exactly one server builds and prepares it; the others wait
    // here. The pool mutex stays free, so batches on hot entries overlap
    // with this prepare.
    const util::MutexLock build(entry->build_mutex);
    {
      const util::MutexLock lock(mutex_);
      sampler = entry->sampler;
    }
    if (sampler == nullptr) {
      hit = false;
      sampler = std::shared_ptr<SpanningTreeSampler>(
          make_sampler(graph::Graph(*entry->graph), entry->options));
      sampler->prepare();
      const std::size_t bytes = sampler->memory_bytes();
      const util::MutexLock lock(mutex_);
      // Alias the sampler's graph copy and drop ours: one copy per entry.
      entry->graph = sampler->graph_handle();
      entry->prepares += 1;
      stats_.prepares += 1;
      if (bytes > options_.memory_budget_bytes) {
        // Oversized: no amount of eviction makes it fit, so serve from the
        // local reference without retaining it — and without flushing the
        // colder residents, which would not have bought any room. Every
        // batch on this entry stays a miss that re-prepares.
      } else {
        entry->sampler = sampler;
        entry->bytes = bytes;
        resident_bytes_ += bytes;
        entry->lru_it = lru_.insert(lru_.end(), entry->fingerprint);
        entry->is_resident = true;
        evict_to_budget_locked();
        stats_.peak_resident_bytes =
            std::max(stats_.peak_resident_bytes, resident_bytes_);
      }
    }
  }

  BatchResult batch = sampler->sample_batch_from(first_index, k);

  {
    const util::MutexLock lock(mutex_);
    stats_.draws += k;
    if (hit)
      ++stats_.hits;
    else
      ++stats_.misses;
    for (const DrawStats& draw : batch.report.draws) {
      stats_.schur_cache_hits += draw.schur_cache_hits;
      stats_.schur_cache_misses += draw.schur_cache_misses;
    }
    // The batch may have grown the sampler's Schur cache; re-read the bytes
    // so residency accounting (and the budget) keeps covering it, then
    // restore the invariant — trimming transient caches before evicting
    // samplers.
    if (entry->is_resident && entry->sampler == sampler) {
      const std::size_t now = sampler->memory_bytes();
      if (now != entry->bytes) {
        resident_bytes_ = resident_bytes_ - entry->bytes + now;
        entry->bytes = now;
        evict_to_budget_locked();
      }
      stats_.peak_resident_bytes =
          std::max(stats_.peak_resident_bytes, resident_bytes_);
    }
  }

  batch_serve_hist_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - serve_start)
          .count()));

  PoolBatchResult result;
  result.fingerprint = entry->fingerprint;
  result.first_draw_index = first_index;
  result.hit = hit;
  result.shard = options_.shard_id;
  result.batch = std::move(batch);
  return result;
}

PoolBatchResult SamplerPool::sample_batch(const Fingerprint& fp, int k,
                                          std::int64_t first_index) {
  if (k < 0)
    throw ServiceError(
        ServiceErrorCode::invalid_request,
        "SamplerPool::sample_batch: k must be >= 0, got " + std::to_string(k));
  std::shared_ptr<Entry> entry;
  std::int64_t first = 0;
  {
    const util::MutexLock lock(mutex_);
    // Admission (shutdown + draw bound) before reservation: a shed batch
    // never consumes a draw-index range, so replay of accepted batches is
    // untouched by shedding.
    check_admission_locked(k, /*queued=*/false);
    entry = find_locked(fp);
    first = reserve_locked(*entry, k, first_index);
  }
  return serve(entry, first, k);
}

std::future<PoolBatchResult> SamplerPool::submit_batch(const Fingerprint& fp, int k,
                                                       std::int64_t first_index) {
  Job job;
  job.count = k;
  std::future<PoolBatchResult> future = job.promise.get_future();
  // Whether the job went onto the worker queue, decided once under the lock.
  // Re-reading workers_ after the lock is released raced close() swapping the
  // workers out: the submission could queue the job AND then see an empty
  // worker set, serving the moved-from job inline (null entry, dead promise).
  bool queued = false;
  try {
    if (k < 0)
      throw ServiceError(
          ServiceErrorCode::invalid_request,
          "SamplerPool::submit_batch: k must be >= 0, got " + std::to_string(k));
    const util::MutexLock lock(mutex_);
    // Admission before reservation — shutdown (a post-close submit fails
    // typed through the future, never a never-completing future) and the
    // backpressure bounds (a shed batch never consumes a draw-index range).
    check_admission_locked(k, /*queued=*/!workers_.empty());
    job.entry = find_locked(fp);
    // Reserving at submission (not execution) time pins every draw's
    // (seed, index) stream the moment the caller enqueues, independent of
    // worker scheduling.
    job.first_index = reserve_locked(*job.entry, k, first_index);
    if (!workers_.empty()) {
      job.enqueued = std::chrono::steady_clock::now();
      queue_.push_back(std::move(job));
      queued = true;
    }
  } catch (...) {
    // The async surface has one error channel: the future. Rejections
    // (unknown fingerprint, bad k) travel it as the same ServiceError the
    // sync path throws.
    job.promise.set_exception(std::current_exception());
    return future;
  }
  if (!queued) {
    // workers == 0: run inline; the future is ready on return.
    try {
      job.promise.set_value(serve(job.entry, job.first_index, job.count));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  } else {
    queue_cv_.notify_one();
  }
  return future;
}

void SamplerPool::worker_loop() {
  for (;;) {
    Job job;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) queue_cv_.wait(lock);
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_wait_hist_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - job.enqueued)
            .count()));
    try {
      job.promise.set_value(serve(job.entry, job.first_index, job.count));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

std::vector<Fingerprint> SamplerPool::resident_order() const {
  const util::MutexLock lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

std::size_t SamplerPool::resident_bytes() const {
  const util::MutexLock lock(mutex_);
  return resident_bytes_;
}

PoolStats SamplerPool::stats() const {
  const util::MutexLock lock(mutex_);
  PoolStats snapshot = stats_;
  snapshot.resident_bytes = resident_bytes_;
  snapshot.resident_count = static_cast<int>(lru_.size());
  snapshot.admitted_count = static_cast<int>(entries_.size());
  return snapshot;
}

metrics::MetricsSnapshot SamplerPool::metrics() const {
  metrics::MetricsSnapshot m;
  m.batch_serve = batch_serve_hist_.snapshot();
  m.queue_wait = queue_wait_hist_.snapshot();
  const util::MutexLock lock(mutex_);
  m.queue_depth = static_cast<std::int64_t>(queue_.size());
  m.in_flight_draws = pending_draws_;
  return m;
}

}  // namespace cliquest::engine
