#include "cclique/meter.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cliquest::cclique {

void Meter::charge(std::string_view label, std::int64_t rounds, std::int64_t messages) {
  if (rounds < 0 || messages < 0) throw std::invalid_argument("Meter::charge: negative");
  CategoryTotals& totals = categories_[std::string(label)];
  totals.rounds += rounds;
  totals.messages += messages;
  totals.events += 1;
}

std::int64_t Meter::total_rounds() const {
  std::int64_t total = 0;
  for (const auto& [label, totals] : categories_) total += totals.rounds;
  return total;
}

std::int64_t Meter::total_messages() const {
  std::int64_t total = 0;
  for (const auto& [label, totals] : categories_) total += totals.messages;
  return total;
}

CategoryTotals Meter::category(std::string_view label) const {
  auto it = categories_.find(std::string(label));
  return it == categories_.end() ? CategoryTotals{} : it->second;
}

void Meter::add(std::string_view label, const CategoryTotals& totals) {
  CategoryTotals& mine = categories_[std::string(label)];
  mine.rounds += totals.rounds;
  mine.messages += totals.messages;
  mine.events += totals.events;
}

void Meter::merge(const Meter& other) {
  for (const auto& [label, totals] : other.categories_) {
    CategoryTotals& mine = categories_[label];
    mine.rounds += totals.rounds;
    mine.messages += totals.messages;
    mine.events += totals.events;
  }
}

std::string Meter::report() const {
  std::vector<std::pair<std::string, CategoryTotals>> rows(categories_.begin(),
                                                           categories_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.rounds > b.second.rounds;
  });
  std::ostringstream out;
  out << "rounds      messages    events  category\n";
  for (const auto& [label, totals] : rows) {
    out << totals.rounds;
    out.width(0);
    out << "\t" << totals.messages << "\t" << totals.events << "\t" << label << "\n";
  }
  out << total_rounds() << "\t" << total_messages() << "\t-\tTOTAL\n";
  return out.str();
}

}  // namespace cliquest::cclique
