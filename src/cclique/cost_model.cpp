#include "cclique/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace cliquest::cclique {

std::int64_t CostModel::routing_rounds(std::int64_t max_load) const {
  if (max_load < 0) throw std::invalid_argument("routing_rounds: negative load");
  if (max_load == 0) return 0;
  return (max_load + n - 1) / n;
}

std::int64_t CostModel::matmul_rounds() const {
  const double base = std::pow(static_cast<double>(n), alpha);
  return static_cast<std::int64_t>(std::ceil(base)) * words_per_entry;
}

std::int64_t CostModel::broadcast_rounds(std::int64_t words) const {
  if (words < 0) throw std::invalid_argument("broadcast_rounds: negative size");
  if (words == 0) return 0;
  return (words + n - 1) / n + 1;
}

}  // namespace cliquest::cclique
