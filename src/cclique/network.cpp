#include "cclique/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace cliquest::cclique {

Network::Network(CostModel model, Meter* meter)
    : model_(model), meter_(meter), inboxes_(static_cast<std::size_t>(model.n)) {
  if (model.n < 1) throw std::invalid_argument("Network: need at least one machine");
  if (meter == nullptr) throw std::invalid_argument("Network: meter is required");
}

void Network::check_machine(int m) const {
  if (m < 0 || m >= model_.n) throw std::out_of_range("Network: bad machine id");
}

void Network::post(int src, int dst, std::int64_t tag, std::vector<std::int64_t> words) {
  check_machine(src);
  check_machine(dst);
  pending_.push_back(Message{src, dst, tag, std::move(words)});
}

void Network::post(int src, int dst, std::int64_t tag, std::int64_t word) {
  post(src, dst, tag, std::vector<std::int64_t>{word});
}

std::int64_t Network::flush(std::string_view label) {
  std::vector<std::int64_t> sent(static_cast<std::size_t>(model_.n), 0);
  std::vector<std::int64_t> received(static_cast<std::size_t>(model_.n), 0);
  std::int64_t total_words = 0;
  for (auto& box : inboxes_) box.clear();
  for (Message& m : pending_) {
    // A message occupies at least one word on the wire (its header).
    const std::int64_t words = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(m.words.size()));
    sent[static_cast<std::size_t>(m.src)] += words;
    received[static_cast<std::size_t>(m.dst)] += words;
    total_words += words;
    inboxes_[static_cast<std::size_t>(m.dst)].push_back(std::move(m));
  }
  pending_.clear();

  std::int64_t max_load = 0;
  for (int i = 0; i < model_.n; ++i)
    max_load = std::max({max_load, sent[static_cast<std::size_t>(i)],
                         received[static_cast<std::size_t>(i)]});
  max_flush_load_ = std::max(max_flush_load_, max_load);

  const std::int64_t rounds = model_.routing_rounds(max_load);
  meter_->charge(label, rounds, total_words);
  return rounds;
}

const std::vector<Message>& Network::inbox(int machine) const {
  check_machine(machine);
  return inboxes_[static_cast<std::size_t>(machine)];
}

std::int64_t Network::broadcast(int src, std::int64_t tag,
                                std::vector<std::int64_t> words,
                                std::string_view label) {
  check_machine(src);
  const std::int64_t rounds =
      model_.broadcast_rounds(static_cast<std::int64_t>(words.size()));
  for (auto& box : inboxes_) box.clear();
  for (int dst = 0; dst < model_.n; ++dst)
    inboxes_[static_cast<std::size_t>(dst)].push_back(Message{src, dst, tag, words});
  meter_->charge(label, rounds,
                 static_cast<std::int64_t>(words.size()) * model_.n);
  return rounds;
}

}  // namespace cliquest::cclique
