#pragma once

// Bulk-synchronous Congested Clique message simulator.
//
// Algorithms post messages (vectors of 64-bit words, each word standing for
// one O(log n)-bit Congested Clique message) between machines; flush()
// delivers everything posted since the previous flush and charges
// routing_rounds(max per-machine send/recv load) rounds to the meter — this
// is Lenzen's routing theorem made operational. Payloads really move, so the
// logic of a distributed algorithm cannot use information its machines never
// received without the meter noticing the traffic.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cclique/cost_model.hpp"
#include "cclique/meter.hpp"

namespace cliquest::cclique {

struct Message {
  int src = 0;
  int dst = 0;
  /// Application-defined tag for demultiplexing within a flush.
  std::int64_t tag = 0;
  std::vector<std::int64_t> words;
};

class Network {
 public:
  Network(CostModel model, Meter* meter);

  int machine_count() const { return model_.n; }
  const CostModel& cost_model() const { return model_; }

  /// Queues a message for the next flush.
  void post(int src, int dst, std::int64_t tag, std::vector<std::int64_t> words);

  /// One-word convenience overload.
  void post(int src, int dst, std::int64_t tag, std::int64_t word);

  /// Delivers all queued messages, charging Lenzen routing rounds under
  /// `label`. Returns the rounds charged. Inboxes are replaced (not
  /// appended): a flush models one routing super-step.
  std::int64_t flush(std::string_view label);

  /// Messages delivered to `machine` by the most recent flush.
  const std::vector<Message>& inbox(int machine) const;

  /// Broadcast from one machine to all; charges broadcast rounds and places
  /// the payload in every inbox (including the sender's own, for uniformity).
  std::int64_t broadcast(int src, std::int64_t tag, std::vector<std::int64_t> words,
                         std::string_view label);

  /// Maximum per-machine load (max of send and receive, in words) seen in any
  /// single flush so far; used by load-balance experiments (E4).
  std::int64_t max_flush_load() const { return max_flush_load_; }

 private:
  void check_machine(int m) const;

  CostModel model_;
  Meter* meter_;
  std::vector<Message> pending_;
  std::vector<std::vector<Message>> inboxes_;
  std::int64_t max_flush_load_ = 0;
};

}  // namespace cliquest::cclique
