#pragma once

// Round-cost formulas for the Congested Clique model (paper §1.6).
//
// The model: n machines, synchronous rounds, each machine sends and receives
// n-1 messages of O(log n) bits per round. Lenzen's routing theorem lets any
// communication pattern in which every machine sends and receives at most
// O(n) messages complete in O(1) rounds; we charge ceil(load / n) rounds for
// a maximum per-machine load of `load` words.
//
// Matrix multiplication of n x n matrices distributed row-per-machine costs
// O(n^alpha) rounds with alpha = 1 - 2/omega = 0.157 (Censor-Hillel et al.);
// entries wider than one O(log n)-bit word multiply the cost by their word
// count (the paper's §2.5 uses O(log^2 n)-bit entries, i.e. O(log n) words).

#include <cstdint>

namespace cliquest::cclique {

struct CostModel {
  /// Number of machines (= vertices of the input graph).
  int n = 1;

  /// Congested Clique matrix-multiplication exponent (currently 0.157).
  double alpha = 0.157;

  /// Words per matrix entry; 1 models O(log n)-bit entries, log n models the
  /// §2.5 fixed-point precision regime.
  int words_per_entry = 1;

  /// Rounds for routing a pattern whose maximum per-machine send or receive
  /// load is max_load words (Lenzen). Zero load costs zero rounds.
  std::int64_t routing_rounds(std::int64_t max_load) const;

  /// Rounds for one n x n matrix multiplication.
  std::int64_t matmul_rounds() const;

  /// Rounds for one machine broadcasting `words` words to everyone
  /// (pipelined binary-tree style broadcast: ceil(words / n) + 1).
  std::int64_t broadcast_rounds(std::int64_t words) const;
};

}  // namespace cliquest::cclique
