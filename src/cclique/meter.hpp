#pragma once

// Round/message accounting, broken down by labelled category.
//
// Every simulated communication or charged primitive records into a Meter so
// benches can report both total rounds and their anatomy (e.g. how much of a
// phase is matrix multiplication vs. binary search; experiment E11).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cliquest::cclique {

struct CategoryTotals {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;  // total words moved under this label
  std::int64_t events = 0;    // number of charges/flushes
};

class Meter {
 public:
  void charge(std::string_view label, std::int64_t rounds, std::int64_t messages = 0);

  std::int64_t total_rounds() const;
  std::int64_t total_messages() const;

  const std::map<std::string, CategoryTotals>& categories() const { return categories_; }
  CategoryTotals category(std::string_view label) const;

  /// Merges another meter's categories into this one (phase -> run rollups).
  void merge(const Meter& other);

  /// Accumulates a category's totals verbatim — events included, unlike
  /// charge(), so a meter can be reconstructed exactly from its categories()
  /// (the engine wire codec's decode path).
  void add(std::string_view label, const CategoryTotals& totals);

  /// Multi-line human-readable table, sorted by descending rounds.
  std::string report() const;

 private:
  std::map<std::string, CategoryTotals> categories_;
};

}  // namespace cliquest::cclique
