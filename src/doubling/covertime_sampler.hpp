#pragma once

// Spanning-tree sampling via doubling walks (paper Corollary 1).
//
// For a graph with cover time tau, running the Section 3 doubling
// construction with walk length ~tau and applying Aldous-Broder to the
// resulting walk samples a uniform spanning tree in ~O(tau/n) rounds. The
// sampler is Las Vegas: if the walk fails to cover, the target length is
// doubled and the construction repeated (the failure probability halves per
// unit of cover time by Markov's inequality, so expected extra work is O(1)).

#include <cstdint>

#include "cclique/meter.hpp"
#include "doubling/doubling.hpp"
#include "graph/graph.hpp"
#include "graph/spanning.hpp"
#include "util/rng.hpp"

namespace cliquest::doubling {

struct CoverTimeSamplerOptions {
  /// Initial walk-length target; 0 selects 4 * n * ceil(log2 n), the right
  /// scale for the O(n log n)-cover-time families the corollary addresses.
  std::int64_t initial_tau = 0;

  /// Root machine whose walk is used for tree extraction.
  int root = 0;

  /// Give up after this many doublings of tau (diagnoses non-covering runs
  /// on pathological inputs rather than looping forever).
  int max_attempts = 12;

  DoublingOptions doubling;
};

struct CoverTimeSamplerResult {
  graph::TreeEdges tree;
  std::int64_t rounds = 0;
  std::int64_t final_tau = 0;  // steps of the concatenated walk until coverage
  /// Total walk length actually constructed across attempts (each attempt
  /// builds a power-of-two-length walk whether or not it ends up covering);
  /// this is the tau that Theorem 2's round formula is measured against.
  std::int64_t built_walk_length = 0;
  int attempts = 0;
};

/// Samples a uniform spanning tree of a connected graph; rounds accumulate in
/// `meter` across attempts.
CoverTimeSamplerResult sample_tree_by_doubling(const graph::Graph& g,
                                               const CoverTimeSamplerOptions& options,
                                               util::Rng& rng, cclique::Meter& meter);

}  // namespace cliquest::doubling
