#include "doubling/covertime_sampler.hpp"

#include <cmath>
#include <stdexcept>

namespace cliquest::doubling {

CoverTimeSamplerResult sample_tree_by_doubling(const graph::Graph& g,
                                               const CoverTimeSamplerOptions& options,
                                               util::Rng& rng, cclique::Meter& meter) {
  const int n = g.vertex_count();
  if (n < 1) throw std::invalid_argument("sample_tree_by_doubling: empty graph");
  if (options.root < 0 || options.root >= n)
    throw std::out_of_range("sample_tree_by_doubling: bad root");

  std::int64_t tau = options.initial_tau;
  if (tau <= 0) {
    int log_n = 1;
    while ((1 << log_n) < n) ++log_n;
    tau = std::int64_t{4} * n * log_n;
  }

  // Las Vegas extension (not restart): if the walk fails to cover, a fresh
  // doubling run is made and the walk of the machine where the previous
  // segment *ended* is appended. By the Markov property the concatenation is
  // one long random walk, so no conditioning bias is introduced — restarting
  // from scratch would condition on "covers within tau" and skew the tree law.
  CoverTimeSamplerResult result;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  visited[static_cast<std::size_t>(options.root)] = 1;
  int distinct = 1;
  int current = options.root;
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  std::int64_t total_length = 0;

  for (int attempt = 0; attempt < options.max_attempts; ++attempt, tau *= 2) {
    ++result.attempts;
    DoublingOptions doubling = options.doubling;
    doubling.tau = tau;
    const DoublingResult run = run_doubling(g, doubling, rng, meter);
    result.rounds += run.rounds;

    // Aldous-Broder extraction: first-entry edges of the concatenated walk.
    const std::vector<int>& walk = run.walks[static_cast<std::size_t>(current)];
    result.built_walk_length += static_cast<std::int64_t>(walk.size()) - 1;
    for (std::size_t i = 1; i < walk.size() && distinct < n; ++i) {
      const int v = walk[i];
      ++total_length;
      if (visited[static_cast<std::size_t>(v)]) continue;
      visited[static_cast<std::size_t>(v)] = 1;
      ++distinct;
      edges.emplace_back(walk[i - 1], v);
    }
    if (distinct == n) {
      result.tree = graph::canonical_tree(std::move(edges));
      result.final_tau = total_length;
      return result;
    }
    current = walk.back();
  }
  throw std::runtime_error(
      "sample_tree_by_doubling: walk failed to cover after max_attempts doublings");
}

}  // namespace cliquest::doubling
