#include "doubling/doubling.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "cclique/network.hpp"
#include "util/discrete.hpp"
#include "util/hash_family.hpp"

namespace cliquest::doubling {
namespace {

int ceil_log2(std::int64_t x) {
  int bits = 0;
  while ((std::int64_t{1} << bits) < x) ++bits;
  return bits;
}

/// Tag layout for walk tuples: (origin vertex, walk index, prefix flag).
std::int64_t encode_tag(int origin, std::int64_t index, bool prefix) {
  return (static_cast<std::int64_t>(origin) << 32) | (index << 1) |
         (prefix ? 1 : 0);
}

int tag_origin(std::int64_t tag) { return static_cast<int>(tag >> 32); }
std::int64_t tag_index(std::int64_t tag) { return (tag & 0xffffffff) >> 1; }
bool tag_is_prefix(std::int64_t tag) { return (tag & 1) != 0; }

}  // namespace

std::int64_t lemma10_bound(int n, std::int64_t k, int hash_c) {
  const double log_n = std::log2(std::max(2, n));
  return static_cast<std::int64_t>(std::ceil(16.0 * hash_c * static_cast<double>(k) * log_n));
}

DoublingResult run_doubling(const graph::Graph& g, const DoublingOptions& options,
                            util::Rng& rng, cclique::Meter& meter) {
  const int n = g.vertex_count();
  if (n < 1) throw std::invalid_argument("run_doubling: empty graph");
  if (options.tau < 1) throw std::invalid_argument("run_doubling: tau must be >= 1");
  for (int v = 0; v < n; ++v)
    if (g.degree(v) == 0) throw std::invalid_argument("run_doubling: isolated vertex");

  const int iterations = ceil_log2(options.tau);
  std::int64_t k = std::int64_t{1} << iterations;

  // walks[v] holds machine v's k walks, each a vertex sequence. Machines'
  // private randomness comes from split streams.
  std::vector<util::Rng> machine_rng;
  machine_rng.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) machine_rng.push_back(rng.split());

  std::vector<std::vector<std::vector<int>>> walks(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    walks[static_cast<std::size_t>(v)].resize(static_cast<std::size_t>(k));
    const auto nbs = g.neighbors(v);
    // Length-1 walks are single random-walk steps: weight-proportional for
    // weighted graphs (uniform when all incident weights are equal). An alias
    // table keeps the k draws O(1) each.
    std::vector<double> weights;
    weights.reserve(nbs.size());
    for (const graph::Neighbor& nb : nbs) weights.push_back(nb.weight);
    const util::AliasTable step(weights);
    for (std::int64_t i = 0; i < k; ++i) {
      const int to =
          nbs[static_cast<std::size_t>(
                  step.sample(machine_rng[static_cast<std::size_t>(v)]))]
              .to;
      walks[static_cast<std::size_t>(v)][static_cast<std::size_t>(i)] = {v, to};
    }
  }

  cclique::CostModel model;
  model.n = n;
  cclique::Meter local;
  cclique::Network net(model, &local);

  DoublingResult result;
  result.iterations = iterations;

  const int t_independence =
      std::max(2, static_cast<int>(std::ceil(8.0 * options.hash_c *
                                             std::log2(std::max(2, n)))));

  while (k > 1) {
    // Step 1: machine 1 draws and broadcasts the hash seed; every machine
    // reconstructs the same t-wise independent function.
    util::Rng hash_rng = machine_rng[0].split();
    util::KWiseHash hash(t_independence, static_cast<std::uint64_t>(n), hash_rng);
    if (options.load_balanced) {
      // O(log^2 n) random bits = t words of the broadcast.
      net.broadcast(0, 0,
                    std::vector<std::int64_t>(static_cast<std::size_t>(t_independence), 0),
                    "doubling/hash_broadcast");
    }

    // Steps 2-3: route prefix tuples (i <= k/2) keyed by (endpoint, k-i+1)
    // and suffix tuples (i > k/2) keyed by (origin, i) to the same rendezvous
    // machine. The unbalanced ablation routes prefixes to the endpoint
    // machine itself and keeps suffixes at home.
    for (int v = 0; v < n; ++v) {
      for (std::int64_t i = 1; i <= k; ++i) {
        auto& walk = walks[static_cast<std::size_t>(v)][static_cast<std::size_t>(i - 1)];
        const bool prefix = i <= k / 2;
        int dst;
        if (prefix) {
          const int end = walk.back();
          dst = options.load_balanced
                    ? static_cast<int>(hash(static_cast<std::uint64_t>(end),
                                            static_cast<std::uint64_t>(k - i + 1)))
                    : end;
        } else {
          dst = options.load_balanced
                    ? static_cast<int>(hash(static_cast<std::uint64_t>(v),
                                            static_cast<std::uint64_t>(i)))
                    : v;
        }
        std::vector<std::int64_t> payload(walk.begin(), walk.end());
        if (!prefix && dst == v && !options.load_balanced) {
          // Unbalanced variant: suffixes stay home; model no traffic.
          continue;
        }
        net.post(v, dst, encode_tag(v, i, prefix), std::move(payload));
      }
    }
    net.flush(options.load_balanced ? "doubling/route_balanced"
                                    : "doubling/route_endpoint");

    // Track the Lemma 10 quantity: tuples received per machine this step.
    for (int m = 0; m < n; ++m) {
      const std::int64_t tuples =
          static_cast<std::int64_t>(net.inbox(m).size());
      if (tuples > result.max_tuples_received) result.max_tuples_received = tuples;
    }

    // Step 4: each rendezvous machine indexes suffixes by (origin, index) and
    // concatenates every matching prefix, sending the merged walk back.
    for (int m = 0; m < n; ++m) {
      std::unordered_map<std::int64_t, const cclique::Message*> suffixes;
      for (const cclique::Message& msg : net.inbox(m))
        if (!tag_is_prefix(msg.tag))
          suffixes[encode_tag(tag_origin(msg.tag), tag_index(msg.tag), false)] = &msg;
      // Unbalanced variant: machine m's own suffixes never left home.
      auto find_suffix = [&](int origin, std::int64_t index) -> const std::vector<int>* {
        if (!options.load_balanced) {
          if (origin != m) return nullptr;
          return &walks[static_cast<std::size_t>(m)][static_cast<std::size_t>(index - 1)];
        }
        auto it = suffixes.find(encode_tag(origin, index, false));
        if (it == suffixes.end()) return nullptr;
        static thread_local std::vector<int> scratch;
        scratch.assign(it->second->words.begin(), it->second->words.end());
        return &scratch;
      };
      for (const cclique::Message& msg : net.inbox(m)) {
        if (!tag_is_prefix(msg.tag)) continue;
        const std::int64_t i = tag_index(msg.tag);
        const int origin = tag_origin(msg.tag);
        const int end = static_cast<int>(msg.words.back());
        const std::vector<int>* suffix = find_suffix(end, k - i + 1);
        if (suffix == nullptr)
          throw std::logic_error("run_doubling: missing suffix for merge");
        std::vector<std::int64_t> merged(msg.words.begin(), msg.words.end());
        // Drop the duplicated junction vertex.
        merged.insert(merged.end(), suffix->begin() + 1, suffix->end());
        net.post(m, origin, encode_tag(origin, i, true), std::move(merged));
      }
    }
    net.flush("doubling/return_merged");

    // Step 5: machines install their merged walks.
    for (int v = 0; v < n; ++v) {
      walks[static_cast<std::size_t>(v)].resize(static_cast<std::size_t>(k / 2));
      for (const cclique::Message& msg : net.inbox(v)) {
        const std::int64_t i = tag_index(msg.tag);
        auto& slot = walks[static_cast<std::size_t>(v)][static_cast<std::size_t>(i - 1)];
        slot.assign(msg.words.begin(), msg.words.end());
      }
    }
    k /= 2;
  }

  result.max_load_words = net.max_flush_load();
  result.rounds = local.total_rounds();
  meter.merge(local);

  result.walks.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    result.walks[static_cast<std::size_t>(v)] =
        std::move(walks[static_cast<std::size_t>(v)][0]);
  return result;
}

}  // namespace cliquest::doubling
