#pragma once

// Load-balanced doubling walk construction (paper Section 3, Theorem 2).
//
// Every machine starts with k = 2^ceil(log2 tau) length-1 walks (random
// incident edges). Each iteration halves k and doubles walk length eta by
// merging prefix walks (indices 1..k/2) with suffix walks (indices
// k/2+1..k): a prefix W_u^i ending at v merges with suffix W_v^{k-i+1}.
// The load-balancing component routes both tuples of a merge pair to the
// machine h_s(v, k-i+1) chosen by an (8c log n)-wise independent hash drawn
// and broadcast once per iteration; Lemma 10 shows every machine then
// receives O(k log n) tuples whp.
//
// The non-load-balanced ablation (`load_balanced = false`) routes prefixes
// straight to their endpoint's machine, reproducing the congestion bottleneck
// the paper attributes to the direct port of Bahmani-Chakrabarti-Xin.

#include <cstdint>
#include <vector>

#include "cclique/meter.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace cliquest::doubling {

struct DoublingOptions {
  /// Desired walk length; rounded up to the next power of two.
  std::int64_t tau = 0;

  /// Hash-based routing (Section 3) vs. the naive route-to-endpoint port.
  bool load_balanced = true;

  /// The constant c in the t = 8 c log n independence of the hash family.
  int hash_c = 2;
};

struct DoublingResult {
  /// walks[v] is the final random walk of machine v: tau'+1 vertices
  /// starting at v, where tau' is tau rounded up to a power of two.
  std::vector<std::vector<int>> walks;

  /// Rounds charged to the meter by this run (also present in the meter).
  std::int64_t rounds = 0;

  /// Maximum number of tuples any machine received in any single routing
  /// step (the Lemma 10 quantity).
  std::int64_t max_tuples_received = 0;

  /// Maximum per-machine word load of any flush (send or receive).
  std::int64_t max_load_words = 0;

  /// Number of doubling iterations executed (= log2 of the rounded tau).
  int iterations = 0;
};

/// Runs the doubling construction on g. Requires a graph with no isolated
/// vertices and tau >= 1. Rounds are charged to `meter` under
/// "doubling/..." labels.
DoublingResult run_doubling(const graph::Graph& g, const DoublingOptions& options,
                            util::Rng& rng, cclique::Meter& meter);

/// The Lemma 10 bound 16 c k log2(n) on tuples received per machine.
std::int64_t lemma10_bound(int n, std::int64_t k, int hash_c);

}  // namespace cliquest::doubling
