#include "core/tree_sampler.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "cclique/cost_model.hpp"
#include "core/phase.hpp"
#include "graph/connectivity.hpp"
#include "linalg/matrix_power.hpp"
#include "schur/schur_complement.hpp"
#include "schur/shortcut.hpp"
#include "walk/transition.hpp"

namespace cliquest::core {
namespace {

int default_rho(int n, SamplingMode mode) {
  if (mode == SamplingMode::approximate)
    return std::max(2, static_cast<int>(std::floor(std::sqrt(static_cast<double>(n)))));
  // Appendix: rho = n^{1/3} keeps the per-pair multiset traffic within the
  // leader's bandwidth.
  return std::max(2, static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n)))));
}

/// Matmul-round charge for building the Schur and shortcut transition
/// matrices of one phase (Corollaries 2-3): powering the 2n-state auxiliary
/// chain to k = O(n^3 log(1/beta)) needs log2(k) squarings, plus one product
/// for QR.
std::int64_t derivative_graph_matmuls(int n) {
  const double log2n = std::log2(std::max(2.0, static_cast<double>(n)));
  return static_cast<std::int64_t>(std::ceil(3.0 * log2n + log2n)) + 1;
}

}  // namespace

CongestedCliqueTreeSampler::CongestedCliqueTreeSampler(graph::Graph g,
                                                       SamplerOptions options)
    : CongestedCliqueTreeSampler(
          std::make_shared<const graph::Graph>(std::move(g)), options) {}

CongestedCliqueTreeSampler::CongestedCliqueTreeSampler(
    std::shared_ptr<const graph::Graph> g, SamplerOptions options)
    : graph_(std::move(g)),
      options_(options),
      schur_cache_(options.schur_cache_budget_bytes) {
  if (graph_ == nullptr)
    throw std::invalid_argument("CongestedCliqueTreeSampler: null graph");
  if (graph().vertex_count() < 1)
    throw std::invalid_argument("CongestedCliqueTreeSampler: empty graph");
  if (!graph::is_connected(graph()))
    throw std::invalid_argument("CongestedCliqueTreeSampler: graph disconnected");
  if (options_.start_vertex < 0 || options_.start_vertex >= graph().vertex_count())
    throw std::out_of_range("CongestedCliqueTreeSampler: start_vertex " +
                            std::to_string(options_.start_vertex) +
                            " outside [0, " + std::to_string(graph().vertex_count()) +
                            ")");
  // Remaining constraints share the engine layer's validator so the two
  // construction paths accept identical ranges with identical messages.
  const std::vector<std::string> errors =
      validate_sampler_options(options_, graph().vertex_count());
  if (!errors.empty()) {
    std::string joined = "CongestedCliqueTreeSampler:";
    for (const std::string& error : errors) joined += " " + error + ";";
    throw std::invalid_argument(joined);
  }
  rho_ = options_.rho_override > 0 ? options_.rho_override
                                   : default_rho(graph().vertex_count(), options_.mode);
  if (rho_ < 2) throw std::invalid_argument("CongestedCliqueTreeSampler: rho < 2");
  if (options_.mode == SamplingMode::exact &&
      options_.matching != MatchingStrategy::group_shuffle &&
      options_.matching != MatchingStrategy::verbatim) {
    // Exact mode is only exact with the per-pair shuffle placement.
    options_.matching = MatchingStrategy::group_shuffle;
  }
}

void CongestedCliqueTreeSampler::prepare() {
  if (precomputed_.has_value() || graph().vertex_count() == 1) return;
  const int n = graph().vertex_count();
  std::vector<int> all(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
  Precomputed pre;
  pre.full_transition = walk::transition_matrix(graph());
  pre.full_shortcut = schur::shortcut_transition(graph(), all);
  pre.target_length = choose_target_length(n, options_);
  int levels = 0;
  while ((std::int64_t{1} << levels) < pre.target_length) ++levels;
  pre.full_powers = linalg::power_table(pre.full_transition, levels);
  pre.prepared_powers = walk::PreparedPowers(pre.full_powers.back(), levels);
  precomputed_ = std::move(pre);
  ++prepare_builds_;
}

std::size_t CongestedCliqueTreeSampler::memory_bytes() const {
  std::size_t bytes = schur_cache_.resident_bytes();
  if (!precomputed_.has_value()) return bytes;
  bytes += precomputed_->full_transition.memory_bytes() +
           precomputed_->full_shortcut.memory_bytes() +
           precomputed_->prepared_powers.memory_bytes();
  for (const linalg::Matrix& power : precomputed_->full_powers)
    bytes += power.memory_bytes();
  return bytes;
}

TreeSample CongestedCliqueTreeSampler::sample(util::Rng& rng) const {
  const int n = graph().vertex_count();
  TreeSample result;
  if (n == 1) return result;

  cclique::CostModel model;
  model.n = n;
  model.words_per_entry = options_.words_per_entry;

  const std::int64_t target_length =
      precomputed_ ? precomputed_->target_length : choose_target_length(n, options_);

  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  visited[static_cast<std::size_t>(options_.start_vertex)] = 1;
  int visited_count = 1;
  int frontier = options_.start_vertex;  // last vertex of the previous phase

  int levels = 0;
  while ((std::int64_t{1} << levels) < target_length) ++levels;
  PhaseScratch scratch;  // reused across every phase of this draw

  int phase_index = 0;
  while (visited_count < n) {
    ++phase_index;
    // S = unvisited vertices + the frontier, in ascending vertex order with
    // the frontier's local index recorded.
    std::vector<int> active;  // local id -> vertex of G
    active.reserve(static_cast<std::size_t>(n - visited_count + 1));
    for (int v = 0; v < n; ++v)
      if (!visited[static_cast<std::size_t>(v)] || v == frontier) active.push_back(v);
    std::unordered_map<int, int> local_of;
    local_of.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i)
      local_of.emplace(active[i], static_cast<int>(i));

    const std::int64_t phase_rounds_before = result.report.meter.total_rounds();

    // Derivative graphs. Phase 1 has S = V, where Schur(G, V) = G and the
    // shortcut matrix reduces to "predecessor = previous walk vertex"; the
    // generic code handles that case, and the matmul charge is skipped since
    // no derivative graphs need to be built.
    const bool full_phase = static_cast<int>(active.size()) == n;
    linalg::Matrix transition_storage;
    linalg::Matrix shortcut_storage;
    const linalg::Matrix* active_transition_ptr = nullptr;
    const linalg::Matrix* shortcut_q_ptr = nullptr;
    const std::vector<linalg::Matrix>* cached_powers = nullptr;
    const walk::PreparedPowers* prepared = nullptr;
    // Keeps a Schur-cache entry alive for the phase even if the cache
    // evicts it mid-walk.
    std::shared_ptr<const schur::PhaseDerivatives> derived;
    if (full_phase && precomputed_) {
      // Phase 1 with a prepare()d sampler: the derivative matrices depend
      // only on the graph, so the cached copies are reused across draws.
      active_transition_ptr = &precomputed_->full_transition;
      shortcut_q_ptr = &precomputed_->full_shortcut;
      cached_powers = &precomputed_->full_powers;
      prepared = &precomputed_->prepared_powers;
    } else if (!full_phase && schur_cache_.enabled()) {
      // ROADMAP (c): the phase's derivative state depends only on (G, S), so
      // recurring active sets across draws reuse one build. Hit or miss, the
      // matrices are the deterministic product of the same construction, so
      // sampling replays bit-identically against the uncached path.
      bool cache_hit = false;
      derived = schur_cache_.get_or_build(
          active,
          [&] {
            schur::PhaseDerivatives d;
            d.transition = schur::schur_transition(graph(), active);
            d.shortcut = schur::shortcut_transition(graph(), active);
            d.powers = linalg::power_table(d.transition, levels);
            // No alias tables: phase endpoints sample via the replay-exact
            // CDFs only, and cache entries should not carry dead bytes.
            d.prepared = walk::PreparedPowers(d.powers.back(), levels,
                                              /*with_alias=*/false);
            return d;
          },
          &cache_hit);
      if (cache_hit)
        ++result.report.schur_cache_hits;
      else
        ++result.report.schur_cache_misses;
      active_transition_ptr = &derived->transition;
      shortcut_q_ptr = &derived->shortcut;
      cached_powers = &derived->powers;
      prepared = &derived->prepared;
    } else {
      transition_storage = full_phase ? walk::transition_matrix(graph())
                                      : schur::schur_transition(graph(), active);
      shortcut_storage = schur::shortcut_transition(graph(), active);
      active_transition_ptr = &transition_storage;
      shortcut_q_ptr = &shortcut_storage;
    }
    if (!full_phase) {
      result.report.meter.charge(
          "phase/matmul_schur_shortcut",
          derivative_graph_matmuls(n) * model.matmul_rounds(),
          static_cast<std::int64_t>(active.size()));
    }
    const linalg::Matrix& active_transition = *active_transition_ptr;
    const linalg::Matrix& shortcut_q = *shortcut_q_ptr;

    std::vector<char> in_s(static_cast<std::size_t>(n), 0);
    for (int v : active) in_s[static_cast<std::size_t>(v)] = 1;

    const int target_distinct =
        std::min<int>(rho_, static_cast<int>(active.size()));

    PhaseWalkResult walk = build_phase_walk(
        active_transition, local_of.at(frontier), target_distinct, target_length, n,
        options_, rng, result.report.meter, cached_powers, prepared, &scratch);

    // Algorithm 4: first-visit edges for each newly visited vertex, in
    // first-visit order, sampled through the shortcut graph.
    int new_edges = 0;
    std::vector<char> seen_local(active.size(), 0);
    seen_local[static_cast<std::size_t>(walk.walk.front())] = 1;
    for (std::size_t i = 1; i < walk.walk.size(); ++i) {
      const int local = walk.walk[i];
      if (seen_local[static_cast<std::size_t>(local)]) continue;
      seen_local[static_cast<std::size_t>(local)] = 1;
      const int v = active[static_cast<std::size_t>(local)];
      const int prev = active[static_cast<std::size_t>(walk.walk[i - 1])];
      const int u = schur::sample_first_visit_neighbor(graph(), in_s, shortcut_q,
                                                       prev, v, rng);
      result.tree.emplace_back(u, v);
      visited[static_cast<std::size_t>(v)] = 1;
      ++visited_count;
      ++new_edges;
    }
    result.report.meter.charge("phase/first_visit_edges", 2,
                               static_cast<std::int64_t>(new_edges));

    frontier = active[static_cast<std::size_t>(walk.walk.back())];

    PhaseStats stats;
    stats.phase_index = phase_index;
    stats.active_vertices = static_cast<int>(active.size());
    stats.target_distinct = target_distinct;
    stats.new_vertices = new_edges;
    stats.walk_length = walk.final_length;
    stats.levels = walk.levels;
    stats.extensions = walk.extensions;
    stats.rounds = result.report.meter.total_rounds() - phase_rounds_before;
    result.report.phases.push_back(stats);
  }

  result.tree = graph::canonical_tree(std::move(result.tree));
  return result;
}

}  // namespace cliquest::core
