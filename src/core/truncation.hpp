#pragma once

// Distributed walk truncation (paper Algorithm 3 + the binary search of
// §2.1.3), executed over the simulated machine roles with every probe's
// communication loads charged to the meter.
//
// A probe CheckTruncationPoint(l') runs three Lenzen routing steps:
//   1. leader -> pair machines: the truncated request counts c_{p,q}(l');
//   2. pair machines -> vertex machines: Count(p, q, j, l') for each vertex j
//      appearing in the truncated prefix of Pi_{p,q};
//   3. vertex machines -> leader: the aggregated Count(j, l').
// The leader then evaluates Dist and CountLast and the two-clause predicate.
// The predicate is true exactly for l' <= l_{i+1} (the first W+ index at
// which the phase walk holds rho distinct vertices), so a binary search over
// the O(log l) candidates finds the truncation point.
//
// With Las Vegas extensions (Appendix §5.1), vertices committed by earlier
// segments of the same phase count toward Dist and CountLast.

#include <cstdint>
#include <unordered_set>

#include "cclique/cost_model.hpp"
#include "cclique/meter.hpp"
#include "core/level_state.hpp"

namespace cliquest::core {

struct TruncationResult {
  /// The largest W+ index whose prefix stays within the distinct budget: the
  /// truncation point l_{i+1} when the budget is reached, or the final W+
  /// index when the whole level stays below budget.
  std::int64_t index = 0;

  /// True when the prefix at `index` holds exactly rho distinct vertices
  /// (i.e. the walk is truncated and ends at `index`).
  bool budget_reached = false;

  /// Probes issued by the binary search (reported for cost analysis).
  int probes = 0;
};

/// One literal CheckTruncationPoint(l') evaluation; charges its three
/// routing steps to `meter` under "phase/truncation_search". `n_active` is
/// the active-graph vertex count (the number of vertex machines involved).
bool check_truncation_point(const Segment& segment, const LevelMidpoints& level,
                            const std::unordered_set<int>& committed, int rho,
                            std::int64_t l_prime, int n_active,
                            const cclique::CostModel& model, cclique::Meter& meter);

/// The leader's binary search for the truncation point over the nonempty W+
/// indices (plus the O(1)-round query of the vertex at the found index).
TruncationResult distributed_truncation_search(const Segment& segment,
                                               const LevelMidpoints& level,
                                               const std::unordered_set<int>& committed,
                                               int rho, int n_active,
                                               const cclique::CostModel& model,
                                               cclique::Meter& meter);

}  // namespace cliquest::core
