#pragma once

// Configuration for the Congested Clique spanning-tree sampler.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cliquest::core {

/// Which variant of the paper's algorithm to run.
enum class SamplingMode {
  /// Theorem 1: rho = floor(sqrt(n)) distinct vertices per phase; midpoints
  /// are compressed to a global multiset and re-placed by sampling a weighted
  /// perfect matching (~O(n^{1/2+alpha}) rounds, eps TV error).
  approximate,
  /// Appendix §5: rho = ceil(n^{1/3}); every pair machine ships its own
  /// midpoint multiset and the leader applies uniform per-pair shuffles
  /// (~O(n^{2/3+alpha}) rounds, exact sampling).
  exact,
};

/// How the leader re-samples midpoint placement in approximate mode.
enum class MatchingStrategy {
  /// Transposition-move Metropolis chain (practical stand-in for the JSV
  /// FPRAS; see DESIGN.md §2).
  metropolis,
  /// Ryser-permanent sequential sampling; exact but exponential, for tests
  /// and small graphs only.
  exact_permanent,
  /// Uniform shuffle of each pair's own multiset (the Appendix §5.3 scheme;
  /// exact, but requires per-pair multiset communication).
  group_shuffle,
  /// Place the sampled sequences verbatim (the sequential §2.1.2 behaviour;
  /// ignores the compression step). Reference for differential testing.
  verbatim,
};

struct SamplerOptions {
  SamplingMode mode = SamplingMode::approximate;
  MatchingStrategy matching = MatchingStrategy::metropolis;

  /// Target total-variation distance (the paper's eps = Omega(1/n^c)).
  double epsilon = 1e-3;

  /// Vertex where the walk (and hence the tree's implicit root) starts.
  int start_vertex = 0;

  /// true: per-phase target length l = smallest power of two at least
  /// log2(4 sqrt(n)/eps) * n^3 (the paper's choice, §2.1). false: a
  /// practical l >= length_factor * n * log2(n)^2; the always-on Las Vegas
  /// extension (Appendix §5.1) preserves correctness for any l.
  bool paper_cubic_length = false;
  double length_factor = 8.0;

  /// Overrides the per-phase distinct-vertex budget rho (0 = mode default:
  /// floor(sqrt(n)) for approximate, ceil(n^{1/3}) for exact).
  int rho_override = 0;

  /// Metropolis chain length per matching-instance site.
  int metropolis_steps_per_site = 60;

  /// Las Vegas guard: abort a phase after this many walk extensions.
  int max_extensions_per_phase = 30;

  /// Cost-model knob: words per matrix entry charged to matmul rounds
  /// (1 = single-word entries; ~log2(n) models the §2.5 precision regime).
  int words_per_entry = 1;

  /// Byte budget for the per-sampler Schur cache (ROADMAP (c)): an LRU of
  /// per-active-set derivative state (Schur transition, shortcut matrix,
  /// power table) keyed by a fingerprint of the active vertex set, so phases
  /// whose active sets recur across draws skip the re-derivation. 0 disables
  /// the cache (the default: recurrence only pays off on structured or
  /// small-rho workloads, and cached bytes count against the serving pool's
  /// budget). Sampling is bit-identical with the cache on or off.
  std::size_t schur_cache_budget_bytes = 0;

  /// Safety cap on materialized partial-walk entries per segment.
  std::int64_t max_segment_entries = std::int64_t{1} << 22;
};

/// Every violated constraint of `options`, as human-readable messages; empty
/// when valid. vertex_count < 0 skips the graph-dependent range checks
/// (start_vertex < n, rho_override <= n). Single source of truth for the
/// sampler constructor and the engine layer's EngineOptions validation, so
/// accepted ranges and messages cannot drift apart.
std::vector<std::string> validate_sampler_options(const SamplerOptions& options,
                                                  int vertex_count = -1);

}  // namespace cliquest::core
