#include "core/truncation.hpp"

#include <algorithm>
#include <unordered_map>

namespace cliquest::core {

bool check_truncation_point(const Segment& segment, const LevelMidpoints& level,
                            const std::unordered_set<int>& committed, int rho,
                            std::int64_t l_prime, int n_active,
                            const cclique::CostModel& model, cclique::Meter& meter) {
  const std::int64_t pair_machines =
      static_cast<std::int64_t>(level.machines.size());

  // Step 1: leader -> pair machines: c_{p,q}(l'). A pair slot j contributes
  // when its midpoint position 2j + 1 lies inside the prefix.
  std::vector<int> request(level.machines.size(), 0);
  const std::int64_t slots_in_prefix = l_prime >= 1 ? (l_prime - 1) / 2 + 1 : 0;
  for (std::int64_t j = 0; j < slots_in_prefix; ++j)
    ++request[static_cast<std::size_t>(
        level.pair_of_slot[static_cast<std::size_t>(j)])];
  meter.charge("phase/truncation_search", model.routing_rounds(pair_machines),
               pair_machines);

  // Step 2: pair machines -> vertex machines: Count(p, q, j, l'). Each pair
  // machine scans its truncated prefix and sends one word per distinct vertex
  // it saw; the per-machine loads drive the Lenzen charge.
  std::unordered_map<int, std::int64_t> count;  // vertex -> Count(j, l')
  std::int64_t max_sent = 0;
  std::int64_t total_words = 0;
  std::vector<std::int64_t> received(static_cast<std::size_t>(n_active), 0);
  for (std::size_t m = 0; m < level.machines.size(); ++m) {
    std::unordered_map<int, std::int64_t> local;
    const auto& sequence = level.machines[m].sequence;
    for (int i = 0; i < request[m]; ++i) ++local[sequence[static_cast<std::size_t>(i)]];
    max_sent = std::max(max_sent, static_cast<std::int64_t>(local.size()));
    for (const auto& [vertex, c] : local) {
      count[vertex] += c;
      ++received[static_cast<std::size_t>(vertex)];
      ++total_words;
    }
  }
  std::int64_t max_received = 0;
  for (std::int64_t r : received) max_received = std::max(max_received, r);
  meter.charge("phase/truncation_search",
               model.routing_rounds(std::max(max_sent, max_received)), total_words);

  // Step 3: vertex machines -> leader: Count(j, l') (one word per vertex
  // machine holding a nonzero count).
  meter.charge("phase/truncation_search",
               model.routing_rounds(static_cast<std::int64_t>(count.size())),
               static_cast<std::int64_t>(count.size()));

  // Step 4: Dist — distinct vertices in the committed phase prefix, in
  // W_i[0..l'], or with a positive midpoint count.
  std::unordered_set<int> distinct = committed;
  for (std::int64_t t = 0; t <= l_prime; t += 2)
    distinct.insert(segment.entries[static_cast<std::size_t>(t / 2)]);
  for (const auto& [vertex, c] : count)
    if (c > 0) distinct.insert(vertex);

  // Step 5.
  if (static_cast<int>(distinct.size()) > rho) return false;

  // Step 6: CountLast — occurrences of W+[l'] in the phase prefix. The
  // leader knows W_i and the committed walk; the midpoint contribution is
  // Count(W+[l'], l'). Committed membership counts as a prior occurrence.
  const int last = wplus_at(segment, level, l_prime);
  std::int64_t count_last = committed.count(last) ? 1 : 0;
  for (std::int64_t t = 0; t <= l_prime; t += 2)
    count_last += (segment.entries[static_cast<std::size_t>(t / 2)] == last);
  const auto it = count.find(last);
  if (it != count.end()) count_last += it->second;

  // Step 7.
  return (static_cast<int>(distinct.size()) < rho) || (count_last == 1);
}

TruncationResult distributed_truncation_search(
    const Segment& segment, const LevelMidpoints& level,
    const std::unordered_set<int>& committed, int rho, int n_active,
    const cclique::CostModel& model, cclique::Meter& meter) {
  TruncationResult result;
  const std::int64_t top =
      2 * (static_cast<std::int64_t>(segment.entries.size()) - 1);

  // Binary search for the largest true index. Index 0 is true by the engine
  // invariant (a segment only starts while the phase is below budget).
  std::int64_t lo = 0;
  std::int64_t hi = top;
  while (lo < hi) {
    const std::int64_t mid = (lo + hi + 1) / 2;
    ++result.probes;
    if (check_truncation_point(segment, level, committed, rho, mid, n_active, model,
                               meter))
      lo = mid;
    else
      hi = mid - 1;
  }
  result.index = lo;

  // The walk is truncated iff the budget is met at the found index: one more
  // probe-sized exchange tells the leader the distinct count at `lo`. (The
  // final CheckTruncationPoint already moved this information; we recompute
  // locally and charge the O(1)-round W+ query.)
  std::unordered_set<int> distinct = committed;
  for (std::int64_t t = 0; t <= result.index; ++t)
    distinct.insert(wplus_at(segment, level, t));
  result.budget_reached = static_cast<int>(distinct.size()) >= rho;
  meter.charge("phase/truncation_search", 1, 1);  // W+[l_{i+1}] lookup
  return result;
}

}  // namespace cliquest::core
