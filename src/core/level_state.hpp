#pragma once

// Shared state of one level of the walk-filling process, as distributed
// across the simulated machines (paper §2.1.3):
//  * the leader M holds the partial walk W_i (`Segment::entries`, dense at
//    the current stride);
//  * each distinct consecutive (start, end) pair is owned by a midpoint
//    machine holding its sampled sequence Pi_{p,q} (Algorithm 2);
//  * slot metadata maps each consecutive pair of W_i to its machine and to
//    its occurrence index within the machine's sequence.

#include <cstdint>
#include <vector>

namespace cliquest::core {

/// A Las Vegas segment: a partial walk dense at the current stride.
/// entries[j] is the vertex at walk position j * gap; the target length of
/// the segment is (entries.size() - 1) * gap.
struct Segment {
  std::vector<int> entries;
  std::int64_t gap = 1;
};

/// Per-level state of the midpoint machines.
struct LevelMidpoints {
  /// pair_of_slot[j]: index into `machines` for the j-th consecutive pair.
  std::vector<int> pair_of_slot;
  /// occurrence_of_slot[j]: how many earlier slots share the same pair.
  std::vector<int> occurrence_of_slot;

  struct PairMachine {
    int p = 0;
    int q = 0;
    std::vector<int> sequence;  // Pi_{p,q}
  };
  std::vector<PairMachine> machines;

  int midpoint_at(std::size_t slot) const {
    const PairMachine& m = machines[static_cast<std::size_t>(pair_of_slot[slot])];
    return m.sequence[static_cast<std::size_t>(occurrence_of_slot[slot])];
  }
};

/// Walk value at W+ index t (0 .. 2 * pairs): even indices come from the
/// segment, odd ones from the midpoint machines.
inline int wplus_at(const Segment& segment, const LevelMidpoints& level,
                    std::int64_t t) {
  if (t % 2 == 0) return segment.entries[static_cast<std::size_t>(t / 2)];
  return level.midpoint_at(static_cast<std::size_t>((t - 1) / 2));
}

}  // namespace cliquest::core
