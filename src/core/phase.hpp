#pragma once

// One phase of the Congested Clique sampler (paper Outline 3, §2.1).
//
// The engine builds a random walk on the *active* transition matrix A (the
// input graph's walk in phase 1; the Schur complement's walk afterwards),
// truncated at the first visit to the rho_t-th distinct vertex of the phase.
// The walk is constructed top-down: the endpoint is sampled from A^l[s, *],
// then midpoints are filled level by level from the Bayes product
// A^{d/2}[p, m] * A^{d/2}[m, q] (Formula 1), with
//   * per-(start,end)-pair midpoint machines holding the sampled sequences
//     Pi_{p,q} (Algorithm 2),
//   * the truncation point found by the distributed binary search of
//     Algorithm 3 (core/truncation.hpp), every CheckTruncationPoint probe
//     executing its three routing steps with measured loads charged to the
//     meter — tests/truncation_test.cpp validates it against an independent
//     literal model and the direct-scan rule,
//   * placement of the compressed midpoint multiset by the configured
//     strategy (weighted-perfect-matching sampling per Lemma 3/4, per-pair
//     shuffles per Appendix §5.3, or verbatim placement for testing),
//   * the Las Vegas extension of Appendix §5.1 whenever the target length is
//     exhausted before rho_t distinct vertices are seen.
//
// Communication is charged per the paper's own load analysis (Lemma 5);
// labels break the cost into meter categories.

#include <cstdint>
#include <vector>

#include "cclique/cost_model.hpp"
#include "cclique/meter.hpp"
#include "core/options.hpp"
#include "linalg/matrix.hpp"
#include "util/discrete.hpp"
#include "util/rng.hpp"
#include "walk/prepared.hpp"

namespace cliquest::core {

/// Reusable scratch arena for build_phase_walk's inner loops (the midpoint
/// machines' product-weight buffer and their rebuilt-in-place alias table).
/// Pass one instance per draw — reused across phases, levels, and machines,
/// the steady-state midpoint loop allocates nothing. Draws are identical
/// with or without a caller-provided scratch.
struct PhaseScratch {
  std::vector<double> weights;
  util::AliasTable alias;
};

struct PhaseWalkResult {
  /// The phase walk in local (active-matrix) vertex ids; starts at the given
  /// start vertex and ends at the first occurrence of the rho_t-th distinct
  /// vertex (or covers the whole active set if it is smaller).
  std::vector<int> walk;

  int levels = 0;      // total level iterations across segments
  int extensions = 0;  // Las Vegas segments beyond the first
  std::int64_t final_length = 0;
};

/// Builds one phase walk.
///
/// `transition` is the active row-stochastic matrix (size n_active), `start`
/// a local id, `target_distinct` = rho_t in [2, n_active]. `clique_n` is the
/// size of the surrounding Congested Clique (the original n), which sets the
/// bandwidth of the cost model. Rounds are charged to `meter`.
///
/// `cached_powers`, when non-null, is a precomputed power table
/// {transition^(2^0), ..., transition^(2^k)} (see linalg::power_table); a
/// segment whose level count fits inside it skips the local recomputation,
/// and a deeper segment (Las Vegas extension) copies the cached prefix and
/// extends it by squaring instead of rebuilding from scratch. The simulated
/// matmul rounds are still charged — the clique would do the work either way
/// — so round accounting is byte-identical with and without the cache, as is
/// the sampled walk.
///
/// `prepared`, when non-null and matching the cached table's top level,
/// serves segment-endpoint draws from its per-row CDFs (replay-identical to
/// the linear scan over the top power's row). `scratch`, when non-null, is
/// the caller's reusable arena for the midpoint machinery.
PhaseWalkResult build_phase_walk(const linalg::Matrix& transition, int start,
                                 int target_distinct, std::int64_t target_length,
                                 int clique_n, const SamplerOptions& options,
                                 util::Rng& rng, cclique::Meter& meter,
                                 const std::vector<linalg::Matrix>* cached_powers
                                 = nullptr,
                                 const walk::PreparedPowers* prepared = nullptr,
                                 PhaseScratch* scratch = nullptr);

/// The paper's per-phase target length: the smallest power of two at least
/// log2(4 sqrt(n) / eps) * n^3 when paper_cubic_length is set, otherwise
/// length_factor * n * log2(n)^2 (Las Vegas extensions cover the shortfall).
std::int64_t choose_target_length(int n, const SamplerOptions& options);

}  // namespace cliquest::core
