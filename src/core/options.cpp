#include "core/options.hpp"

#include <cmath>

namespace cliquest::core {

std::vector<std::string> validate_sampler_options(const SamplerOptions& options,
                                                  int vertex_count) {
  std::vector<std::string> errors;
  const auto reject = [&errors](std::string message) {
    errors.push_back(std::move(message));
  };

  if (options.start_vertex < 0)
    reject("start_vertex must be >= 0, got " + std::to_string(options.start_vertex));
  if (!(options.epsilon > 0.0) || std::isnan(options.epsilon))
    reject("epsilon must be > 0, got " + std::to_string(options.epsilon));
  if (options.rho_override < 0 || options.rho_override == 1)
    reject("rho_override must be 0 (mode default) or >= 2, got " +
           std::to_string(options.rho_override));
  if (!options.paper_cubic_length && !(options.length_factor > 0.0))
    reject("length_factor must be > 0, got " + std::to_string(options.length_factor));
  if (options.metropolis_steps_per_site < 1)
    reject("metropolis_steps_per_site must be >= 1, got " +
           std::to_string(options.metropolis_steps_per_site));
  if (options.max_extensions_per_phase < 1)
    reject("max_extensions_per_phase must be >= 1, got " +
           std::to_string(options.max_extensions_per_phase));
  if (options.words_per_entry < 1)
    reject("words_per_entry must be >= 1, got " +
           std::to_string(options.words_per_entry));
  if (options.max_segment_entries < 1)
    reject("max_segment_entries must be >= 1, got " +
           std::to_string(options.max_segment_entries));

  if (vertex_count >= 0) {
    if (options.start_vertex >= vertex_count)
      reject("start_vertex " + std::to_string(options.start_vertex) +
             " out of range for a graph with " + std::to_string(vertex_count) +
             " vertices");
    if (options.rho_override > vertex_count)
      reject("rho_override " + std::to_string(options.rho_override) +
             " exceeds vertex count " + std::to_string(vertex_count));
  }
  return errors;
}

}  // namespace cliquest::core
