#pragma once

// The paper's headline algorithm: uniform spanning tree sampling in the
// Congested Clique in ~O(n^{1/2+alpha}) rounds (Theorem 1), with the exact
// ~O(n^{2/3+alpha}) variant of the Appendix.
//
// The sampler proceeds in phases (Outline 3). Each phase:
//   1. forms S = {unvisited} + {last vertex of the previous phase},
//   2. computes the Schur complement transition matrix of G onto S and the
//      shortcut transition matrix (charged at the paper's §2.4 matmul
//      counts),
//   3. builds a walk on Schur(G, S) visiting rho_t distinct vertices via the
//      top-down filling engine (core/phase.hpp),
//   4. samples each newly visited vertex's first-visit edge in G through the
//      shortcut graph by Bayes' rule (Algorithm 4).
// The union of first-visit edges over all phases is the spanning tree; by
// Aldous-Broder it is uniform (up to the matching-sampler error in
// approximate mode; exactly in exact mode).

#include <cstdint>
#include <memory>
#include <optional>

#include "core/options.hpp"
#include "core/round_report.hpp"
#include "graph/graph.hpp"
#include "graph/spanning.hpp"
#include "linalg/matrix.hpp"
#include "schur/schur_cache.hpp"
#include "util/rng.hpp"
#include "walk/prepared.hpp"

namespace cliquest::core {

struct TreeSample {
  graph::TreeEdges tree;
  RoundReport report;
};

class CongestedCliqueTreeSampler {
 public:
  /// The graph must be connected with at least one vertex. The sampler owns
  /// a copy, so temporaries are safe to pass. Throws std::invalid_argument /
  /// std::out_of_range on misconfiguration (disconnected graph, bad start
  /// vertex, epsilon <= 0, bad rho_override; see
  /// core::validate_sampler_options for the full constraint set).
  CongestedCliqueTreeSampler(graph::Graph g, SamplerOptions options);

  /// Shares an existing immutable graph instead of copying it — the engine
  /// layer uses this so a sampler stack holds one graph copy in total.
  CongestedCliqueTreeSampler(std::shared_ptr<const graph::Graph> g,
                             SamplerOptions options);

  /// Hoists the per-graph precomputation out of the draw path: the phase-1
  /// transition matrix (Schur(G, V) = G), the phase-1 shortcut matrix, and
  /// the per-phase target walk length. Idempotent; after it returns, sample()
  /// is safe to call concurrently from multiple threads with per-thread Rngs.
  void prepare();
  bool prepared() const { return precomputed_.has_value(); }

  /// Number of times the precomputation was actually built (stays at 1 no
  /// matter how many draws follow a prepare(); batch harnesses assert on it).
  int prepare_builds() const { return prepare_builds_; }

  /// Bytes held by the prepare() cache — the full power table (the dominant
  /// (log2(target_length) + 1)·n² doubles), the phase-1 transition/shortcut
  /// matrices, and the endpoint-sampling CDF/alias tables — plus whatever
  /// the Schur cache currently retains. 0 before prepare() (modulo cache
  /// fills). The engine pool charges this against its LRU memory budget;
  /// unlike the prepare() portion it can grow while draws run, which the
  /// pool re-reads after each served batch.
  std::size_t memory_bytes() const;

  /// Drops every Schur-cache entry, returning the bytes released. The
  /// serving pool's memory-pressure hook: transient derivative caches are
  /// reclaimed before whole samplers are evicted. Draws in flight keep
  /// their entries alive via shared ownership.
  std::size_t trim_schur_cache() const { return schur_cache_.trim(); }

  /// Hit/miss/eviction counters of the per-active-set Schur cache.
  schur::SchurCacheStats schur_cache_stats() const { return schur_cache_.stats(); }

  /// Draws one spanning tree with full round accounting. Reuses the
  /// prepare() cache when present; otherwise computes per-graph state
  /// locally (the pre-engine one-shot behaviour). Phases past the first
  /// consult the Schur cache (when enabled) for their per-active-set
  /// derivative state; the report carries the hit/miss counts.
  TreeSample sample(util::Rng& rng) const;

  /// Per-phase distinct-vertex budget rho for this instance.
  int rho() const { return rho_; }

  const SamplerOptions& options() const { return options_; }
  const graph::Graph& graph() const { return *graph_; }

 private:
  /// Per-graph state that every draw would otherwise rebuild: phase 1 always
  /// has S = V, so its derivative matrices depend only on the input graph.
  struct Precomputed {
    linalg::Matrix full_transition;  // walk transition matrix of G
    linalg::Matrix full_shortcut;    // shortcut matrix for S = V
    std::int64_t target_length = 0;  // per-phase walk-length target
    /// Power table {P, P^2, ..., P^target_length} of full_transition — the
    /// Initialization Step's matrices for every phase-1 segment, the
    /// dominant per-draw cost the engine's sample_batch amortizes. Memory is
    /// (log2(target_length) + 1) n^2 doubles.
    std::vector<linalg::Matrix> full_powers;
    /// Per-row CDFs + alias tables of full_powers' top entry: phase-1
    /// segment endpoints sample in O(log n) by binary search, replaying the
    /// linear scan draw-for-draw.
    walk::PreparedPowers prepared_powers;
  };

  std::shared_ptr<const graph::Graph> graph_;
  SamplerOptions options_;
  int rho_;
  std::optional<Precomputed> precomputed_;
  /// Per-active-set derivative cache (ROADMAP (c)); internally synchronized,
  /// so concurrent post-prepare draws share it. Disabled at budget 0.
  mutable schur::SchurCache schur_cache_;
  int prepare_builds_ = 0;
};

}  // namespace cliquest::core
