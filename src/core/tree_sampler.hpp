#pragma once

// The paper's headline algorithm: uniform spanning tree sampling in the
// Congested Clique in ~O(n^{1/2+alpha}) rounds (Theorem 1), with the exact
// ~O(n^{2/3+alpha}) variant of the Appendix.
//
// The sampler proceeds in phases (Outline 3). Each phase:
//   1. forms S = {unvisited} + {last vertex of the previous phase},
//   2. computes the Schur complement transition matrix of G onto S and the
//      shortcut transition matrix (charged at the paper's §2.4 matmul
//      counts),
//   3. builds a walk on Schur(G, S) visiting rho_t distinct vertices via the
//      top-down filling engine (core/phase.hpp),
//   4. samples each newly visited vertex's first-visit edge in G through the
//      shortcut graph by Bayes' rule (Algorithm 4).
// The union of first-visit edges over all phases is the spanning tree; by
// Aldous-Broder it is uniform (up to the matching-sampler error in
// approximate mode; exactly in exact mode).

#include <cstdint>

#include "core/options.hpp"
#include "core/round_report.hpp"
#include "graph/graph.hpp"
#include "graph/spanning.hpp"
#include "util/rng.hpp"

namespace cliquest::core {

struct TreeSample {
  graph::TreeEdges tree;
  RoundReport report;
};

class CongestedCliqueTreeSampler {
 public:
  /// The graph must be connected with at least one vertex. The sampler owns
  /// a copy, so temporaries are safe to pass.
  CongestedCliqueTreeSampler(graph::Graph g, SamplerOptions options);

  /// Draws one spanning tree with full round accounting.
  TreeSample sample(util::Rng& rng) const;

  /// Per-phase distinct-vertex budget rho for this instance.
  int rho() const { return rho_; }

  const SamplerOptions& options() const { return options_; }
  const graph::Graph& graph() const { return graph_; }

 private:
  graph::Graph graph_;
  SamplerOptions options_;
  int rho_;
};

}  // namespace cliquest::core
