#include "core/round_report.hpp"

#include <sstream>

namespace cliquest::core {

std::string RoundReport::summary() const {
  std::ostringstream out;
  out << "phase  |S|    rho_t  new    levels ext  walk_len   rounds\n";
  for (const PhaseStats& p : phases) {
    out << p.phase_index << "\t" << p.active_vertices << "\t" << p.target_distinct
        << "\t" << p.new_vertices << "\t" << p.levels << "\t" << p.extensions << "\t"
        << p.walk_length << "\t" << p.rounds << "\n";
  }
  out << "\n" << meter.report();
  return out.str();
}

}  // namespace cliquest::core
