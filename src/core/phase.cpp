#include "core/phase.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/level_state.hpp"
#include "core/truncation.hpp"
#include "linalg/matrix_power.hpp"
#include "matching/samplers.hpp"
#include "util/discrete.hpp"

namespace cliquest::core {
namespace {

int ceil_log2_i64(std::int64_t x) {
  int bits = 0;
  while ((std::int64_t{1} << bits) < x) ++bits;
  return bits;
}

/// Samples Pi_{p,q} for every distinct consecutive pair of `segment`
/// (Algorithm 2). `half` = A^{gap/2}. The product-weight buffer and alias
/// table live in `scratch` and are rebuilt in place per machine, so the
/// steady-state machine loop performs no heap allocation.
LevelMidpoints generate_midpoints(const Segment& segment, const linalg::Matrix& half,
                                  util::Rng& rng, PhaseScratch& scratch) {
  LevelMidpoints level;
  const std::size_t pairs = segment.entries.size() - 1;
  level.pair_of_slot.resize(pairs);
  level.occurrence_of_slot.resize(pairs);

  std::map<std::pair<int, int>, int> machine_of_pair;
  for (std::size_t j = 0; j < pairs; ++j) {
    const std::pair<int, int> key{segment.entries[j], segment.entries[j + 1]};
    auto [it, inserted] =
        machine_of_pair.emplace(key, static_cast<int>(level.machines.size()));
    if (inserted)
      level.machines.push_back(
          LevelMidpoints::PairMachine{key.first, key.second, {}});
    level.pair_of_slot[j] = it->second;
    level.occurrence_of_slot[j] =
        static_cast<int>(level.machines[static_cast<std::size_t>(it->second)]
                             .sequence.size());
    // Reserve the occurrence slot; actual sampling happens below per machine.
    level.machines[static_cast<std::size_t>(it->second)].sequence.push_back(-1);
  }

  // Each pair machine receives the unnormalized distribution
  // (A^{gap/2}[p, j] * A^{gap/2}[j, q])_j from the vertex machines and samples
  // its sequence i.i.d.; an alias table makes long sequences O(1) per draw.
  const int n = half.rows();
  scratch.weights.resize(static_cast<std::size_t>(n));
  for (auto& machine : level.machines) {
    for (int j = 0; j < n; ++j)
      scratch.weights[static_cast<std::size_t>(j)] =
          half(machine.p, j) * half(j, machine.q);
    scratch.alias.rebuild(scratch.weights);
    // Degenerate all-zero rows are impossible: (p, q) occur at distance gap
    // in a positive-probability walk, so A^gap[p, q] > 0.
    for (int& slot : machine.sequence) slot = scratch.alias.sample(rng);
  }
  return level;
}

/// Reference truncation rule for the debug cross-check: the smallest W+
/// index t at which the phase has seen rho_t distinct vertices, or -1 when
/// the whole W+ stays below the budget. distributed_truncation_search must
/// return exactly this (see also tests/truncation_test.cpp).
[[maybe_unused]] std::int64_t find_truncation_index(
    const Segment& segment, const LevelMidpoints& level,
    const std::unordered_set<int>& committed, int target_distinct) {
  std::unordered_set<int> seen = committed;
  const std::int64_t top = 2 * (static_cast<std::int64_t>(segment.entries.size()) - 1);
  for (std::int64_t t = 0; t <= top; ++t) {
    const int v = wplus_at(segment, level, t);
    if (seen.insert(v).second &&
        static_cast<int>(seen.size()) >= target_distinct)
      return t;
  }
  return -1;
}

/// Weighted-bipartite placement instance (approximate mode): rows = midpoint
/// instances of the multiset (final midpoint excluded), columns = midpoint
/// positions (final position excluded), weight = Formula 1 for the position's
/// pair. Lemma 3: a perfect matching drawn proportional to its weight places
/// the compressed multiset with the law of the original sequences.
///
/// `instances` arrive in verbatim order (instance i was sampled for position
/// i), which provides a guaranteed positive-weight starting assignment for
/// the Metropolis chain. In the real protocol the leader only holds the
/// multiset and would compute *some* positive start with a poly-time
/// bipartite matching on the support pattern; the chain's stationary law is
/// identical either way.
std::vector<int> place_by_matching(const std::vector<int>& instances,
                                   const std::vector<std::pair<int, int>>& position_pairs,
                                   const linalg::Matrix& half,
                                   const SamplerOptions& options, util::Rng& rng) {
  const int m = static_cast<int>(instances.size());
  // Degenerate instances the leader can resolve locally without a sampler:
  //  * all instances share one value — the assignment is forced;
  //  * all positions share one (p, q) pair — every matching has the same
  //    weight prod_x w(x), so a uniform placement of the multiset is exact.
  // Both arise routinely (e.g. near-periodic Schur phases on bipartite
  // remnants) and can involve tens of thousands of positions.
  const bool one_value =
      std::all_of(instances.begin(), instances.end(),
                  [&](int v) { return v == instances.front(); });
  if (one_value) return instances;
  const bool one_pair =
      std::all_of(position_pairs.begin(), position_pairs.end(),
                  [&](const std::pair<int, int>& pq) {
                    return pq == position_pairs.front();
                  });
  if (one_pair) {
    std::vector<int> shuffled = instances;
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1], shuffled[rng.uniform_below(i)]);
    return shuffled;
  }

  if (options.matching == MatchingStrategy::exact_permanent) {
    // Exact path: materializes the m x m weight matrix (test/small-graph
    // tool; guarded by the Ryser dimension limit inside the sampler).
    linalg::Matrix weights(m, m, 0.0);
    for (int r = 0; r < m; ++r)
      for (int c = 0; c < m; ++c) {
        const auto& [p, q] = position_pairs[static_cast<std::size_t>(c)];
        weights(r, c) = half(p, instances[static_cast<std::size_t>(r)]) *
                        half(instances[static_cast<std::size_t>(r)], q);
      }
    matching::ExactPermanentSampler sampler;
    const std::vector<int> sigma = sampler.sample(weights, rng);
    std::vector<int> placed(static_cast<std::size_t>(m), -1);
    for (int r = 0; r < m; ++r)
      placed[static_cast<std::size_t>(sigma[static_cast<std::size_t>(r)])] =
          instances[static_cast<std::size_t>(r)];
    return placed;
  }

  // Metropolis transposition chain with on-demand weights: w(x, position)
  // depends only on (x, pair(position)), so no m x m matrix is needed —
  // essential when bipartite-parity phases make m as large as the segment.
  auto weight = [&](int instance_vertex, std::size_t position) {
    const auto& [p, q] = position_pairs[position];
    return half(p, instance_vertex) * half(instance_vertex, q);
  };
  std::vector<int> assign(static_cast<std::size_t>(m));  // position -> instance id
  for (int i = 0; i < m; ++i) assign[static_cast<std::size_t>(i)] = i;
  const long long sweeps =
      static_cast<long long>(options.metropolis_steps_per_site) * m *
      std::max(1, static_cast<int>(std::ceil(std::log2(std::max(2, m)))));
  for (long long step = 0; step < sweeps; ++step) {
    const std::size_t a = rng.uniform_below(static_cast<std::uint64_t>(m));
    std::size_t b = rng.uniform_below(static_cast<std::uint64_t>(m - 1));
    if (b >= a) ++b;
    const int xa = instances[static_cast<std::size_t>(assign[a])];
    const int xb = instances[static_cast<std::size_t>(assign[b])];
    const double current = weight(xa, a) * weight(xb, b);
    const double proposed = weight(xa, b) * weight(xb, a);
    if (proposed <= 0.0) continue;
    if (proposed >= current || rng.next_double() * current < proposed)
      std::swap(assign[a], assign[b]);
  }
  std::vector<int> placed(static_cast<std::size_t>(m), -1);
  for (int y = 0; y < m; ++y)
    placed[static_cast<std::size_t>(y)] =
        instances[static_cast<std::size_t>(assign[static_cast<std::size_t>(y)])];
  return placed;
}

/// Charges the paper's per-level communication to the meter: midpoint
/// requests/distributions (Lenzen O(1) rounds each), multiset collection,
/// and the S' x S' submatrix transfer. The binary-search probes charge
/// themselves inside distributed_truncation_search.
void charge_level_costs(cclique::Meter& meter, const cclique::CostModel& model,
                        std::int64_t pair_machines, std::int64_t n_active,
                        std::int64_t support_size, bool exact_mode,
                        std::int64_t rho) {
  // M -> pair machines: one count word each.
  meter.charge("phase/midpoint_requests", model.routing_rounds(pair_machines),
               pair_machines);
  // Vertex machines -> pair machines: n_active words per pair machine.
  meter.charge("phase/midpoint_distributions",
               model.routing_rounds(std::max(pair_machines, n_active)),
               pair_machines * n_active);
  if (exact_mode) {
    // Appendix §5.3: every pair machine ships its truncated multiset
    // (O(rho) words) to M.
    meter.charge("phase/pair_multisets",
                 model.routing_rounds(pair_machines * rho), pair_machines * rho);
  } else {
    // Vertex machines -> M: one count word each (the global multiset).
    meter.charge("phase/multiset_collect", model.routing_rounds(n_active), n_active);
    // M broadcasts S' and receives the S' x S' submatrix of A^{gap/2}.
    meter.charge("phase/submatrix",
                 model.broadcast_rounds(support_size) +
                     model.routing_rounds(support_size * support_size),
                 support_size + support_size * support_size);
  }
}

}  // namespace

std::int64_t choose_target_length(int n, const SamplerOptions& options) {
  const double log2n = std::log2(std::max(2.0, static_cast<double>(n)));
  double target;
  if (options.paper_cubic_length) {
    const double factor =
        std::log2(std::max(2.0, 4.0 * std::sqrt(static_cast<double>(n)) /
                                    options.epsilon));
    target = factor * std::pow(static_cast<double>(n), 3.0);
  } else {
    target = options.length_factor * static_cast<double>(n) * log2n * log2n;
  }
  std::int64_t length = 2;
  while (static_cast<double>(length) < target) length *= 2;
  return length;
}

PhaseWalkResult build_phase_walk(const linalg::Matrix& transition, int start,
                                 int target_distinct, std::int64_t target_length,
                                 int clique_n, const SamplerOptions& options,
                                 util::Rng& rng, cclique::Meter& meter,
                                 const std::vector<linalg::Matrix>* cached_powers,
                                 const walk::PreparedPowers* prepared,
                                 PhaseScratch* scratch) {
  const int n_active = transition.rows();
  if (transition.cols() != n_active)
    throw std::invalid_argument("build_phase_walk: transition not square");
  if (start < 0 || start >= n_active)
    throw std::out_of_range("build_phase_walk: bad start");
  if (target_distinct < 2 || target_distinct > n_active)
    throw std::invalid_argument("build_phase_walk: bad target_distinct");
  if (target_length < 2 || (target_length & (target_length - 1)) != 0)
    throw std::invalid_argument(
        "build_phase_walk: target_length must be a power of two >= 2");

  cclique::CostModel model;
  model.n = clique_n;
  model.words_per_entry = options.words_per_entry;

  PhaseWalkResult result;
  std::vector<int> phase_walk{start};
  std::unordered_set<int> committed{start};

  PhaseScratch local_scratch;
  PhaseScratch& arena = scratch != nullptr ? *scratch : local_scratch;

  std::int64_t segment_length = target_length;
  const bool exact_mode = options.mode == SamplingMode::exact;

  // Power table for segments the cached table does not cover: seeded from
  // the cached prefix (or the transition itself) once, then extended by one
  // squaring per deeper level — a Las Vegas extension never rebuilds levels
  // it already has. Identical tables to a from-scratch build.
  std::vector<linalg::Matrix> local_powers;

  while (static_cast<int>(committed.size()) < target_distinct) {
    if (result.extensions > options.max_extensions_per_phase)
      throw std::runtime_error("build_phase_walk: too many Las Vegas extensions");

    const int levels_here = ceil_log2_i64(segment_length);
    // Initialization Step: the power table A, A^2, ..., A^l (one matmul per
    // level) plus the per-machine row/column exchange (O(1) rounds each).
    // A prepare()d sampler hands in the table for the phase-1 matrix; the
    // simulated rounds are charged identically either way.
    const bool use_cache =
        cached_powers != nullptr &&
        static_cast<int>(cached_powers->size()) > levels_here;
    if (!use_cache) {
      if (local_powers.empty()) {
        if (cached_powers != nullptr && !cached_powers->empty())
          local_powers = *cached_powers;
        else
          local_powers.push_back(transition);
      }
      linalg::extend_power_table(local_powers, levels_here);
    }
    const std::vector<linalg::Matrix>& powers =
        use_cache ? *cached_powers : local_powers;
    meter.charge("phase/matmul_powers",
                 static_cast<std::int64_t>(levels_here) * model.matmul_rounds(),
                 static_cast<std::int64_t>(levels_here) * n_active);

    // Segment endpoint from A^l[back, *]: the prepared per-row CDF when it
    // matches this level (replay-identical to the linear scan), the row scan
    // otherwise.
    const bool use_prepared = use_cache && prepared != nullptr &&
                              prepared->levels() == levels_here;
    Segment segment;
    segment.gap = segment_length;
    segment.entries = {
        phase_walk.back(),
        use_prepared
            ? prepared->sample_end(phase_walk.back(), rng)
            : util::sample_unnormalized(
                  powers[static_cast<std::size_t>(levels_here)].row(
                      phase_walk.back()),
                  rng)};
    meter.charge("phase/walk_init", 1, 1);

    // Level loop: halve the gap until the segment is a dense walk.
    std::int64_t truncated_at = -1;  // W+ index of the rho_t-th distinct vertex
    while (segment.gap >= 2) {
      ++result.levels;
      const linalg::Matrix& half =
          powers[static_cast<std::size_t>(ceil_log2_i64(segment.gap) - 1)];
      LevelMidpoints level = generate_midpoints(segment, half, rng, arena);

      // Algorithm 3: the distributed binary search locates the truncation
      // point; every probe's routing loads are charged inside.
      const TruncationResult truncation = distributed_truncation_search(
          segment, level, committed, target_distinct, n_active, model, meter);
      assert(truncation.index ==
             [&] {
               const std::int64_t reference =
                   find_truncation_index(segment, level, committed, target_distinct);
               return reference >= 0
                          ? reference
                          : 2 * (static_cast<std::int64_t>(segment.entries.size()) - 1);
             }());
      const std::int64_t keep = truncation.index;

      // Midpoint positions inside the kept prefix are the odd W+ indices.
      std::vector<std::int64_t> midpoint_positions;
      for (std::int64_t t = 1; t <= keep; t += 2) midpoint_positions.push_back(t);

      charge_level_costs(meter, model,
                         static_cast<std::int64_t>(level.machines.size()), n_active,
                         /*support_size=*/static_cast<std::int64_t>(target_distinct) +
                             static_cast<std::int64_t>(midpoint_positions.size() ? 1 : 0) +
                             static_cast<std::int64_t>(committed.size()),
                         exact_mode || options.matching == MatchingStrategy::group_shuffle,
                         target_distinct);

      std::vector<int> next_entries;
      next_entries.reserve(static_cast<std::size_t>(keep) + 1);

      if (midpoint_positions.empty()) {
        // Prefix contains no midpoints (keep == 0): the level only truncates.
        for (std::int64_t t = 0; t <= keep; t += 2)
          next_entries.push_back(segment.entries[static_cast<std::size_t>(t / 2)]);
      } else {
        // The chronologically final midpoint is pinned to its true position
        // (Lemma 4); the rest are re-placed by the configured strategy.
        const std::int64_t final_pos = midpoint_positions.back();
        const int final_midpoint = wplus_at(segment, level, final_pos);

        std::unordered_map<std::int64_t, int> placement;
        placement[final_pos] = final_midpoint;

        const bool shuffle_mode =
            exact_mode || options.matching == MatchingStrategy::group_shuffle;
        if (options.matching == MatchingStrategy::verbatim) {
          for (std::int64_t t : midpoint_positions)
            placement[t] = wplus_at(segment, level, t);
        } else if (shuffle_mode) {
          // Appendix §5.3: uniformly permute each pair machine's truncated
          // multiset; the final midpoint stays pinned in its own pair.
          std::vector<std::vector<std::int64_t>> positions_of_pair(
              level.machines.size());
          std::vector<std::vector<int>> values_of_pair(level.machines.size());
          for (std::int64_t t : midpoint_positions) {
            const int pair = level.pair_of_slot[static_cast<std::size_t>((t - 1) / 2)];
            if (t != final_pos)
              positions_of_pair[static_cast<std::size_t>(pair)].push_back(t);
            values_of_pair[static_cast<std::size_t>(pair)].push_back(
                wplus_at(segment, level, t));
          }
          const int final_pair =
              level.pair_of_slot[static_cast<std::size_t>((final_pos - 1) / 2)];
          // Remove one instance of the final midpoint from its pair multiset.
          auto& final_values = values_of_pair[static_cast<std::size_t>(final_pair)];
          final_values.erase(
              std::find(final_values.begin(), final_values.end(), final_midpoint));
          for (std::size_t pair = 0; pair < level.machines.size(); ++pair) {
            auto& values = values_of_pair[pair];
            for (std::size_t i = values.size(); i > 1; --i)
              std::swap(values[i - 1], values[rng.uniform_below(i)]);
            const auto& slots = positions_of_pair[pair];
            for (std::size_t i = 0; i < slots.size(); ++i)
              placement[slots[i]] = values[i];
          }
        } else {
          // Approximate mode (Lemma 3/4): global multiset + weighted perfect
          // matching over the complete bipartite instance.
          std::vector<int> instances;
          std::vector<std::pair<int, int>> position_pairs;
          for (std::int64_t t : midpoint_positions) {
            if (t == final_pos) continue;
            instances.push_back(wplus_at(segment, level, t));
            const auto& machine = level.machines[static_cast<std::size_t>(
                level.pair_of_slot[static_cast<std::size_t>((t - 1) / 2)])];
            position_pairs.emplace_back(machine.p, machine.q);
          }
          if (!instances.empty()) {
            // Instances stay in verbatim order: the identity assignment is a
            // positive-weight matching to start the chain from (the leader
            // only needs the multiset; see place_by_matching's doc comment).
            const std::vector<int> placed = place_by_matching(
                instances, position_pairs, half, options, rng);
            std::size_t idx = 0;
            for (std::int64_t t : midpoint_positions) {
              if (t == final_pos) continue;
              placement[t] = placed[idx++];
            }
          }
        }

        for (std::int64_t t = 0; t <= keep; ++t) {
          if (t % 2 == 0) {
            next_entries.push_back(segment.entries[static_cast<std::size_t>(t / 2)]);
          } else {
            next_entries.push_back(placement.at(t));
          }
        }
      }

      segment.entries = std::move(next_entries);
      segment.gap /= 2;
      if (static_cast<std::int64_t>(segment.entries.size()) >
          options.max_segment_entries)
        throw std::runtime_error("build_phase_walk: segment entry cap exceeded");
      if (truncation.budget_reached) truncated_at = truncation.index;

      // Lemma 4 invariant: after placement the truncation property still
      // holds — the prefix strictly before the cut misses exactly one of the
      // rho_t distinct vertices, and the final entry supplies it.
      if (truncation.budget_reached) {
        std::unordered_set<int> seen = committed;
        for (std::size_t i = 0; i + 1 < segment.entries.size(); ++i)
          seen.insert(segment.entries[i]);
        assert(static_cast<int>(seen.size()) == target_distinct - 1);
        assert(seen.insert(segment.entries.back()).second);
      }
    }

    // Commit the segment onto the phase walk (drop the shared first vertex).
    phase_walk.insert(phase_walk.end(), segment.entries.begin() + 1,
                      segment.entries.end());
    for (int v : segment.entries) committed.insert(v);

    if (static_cast<int>(committed.size()) < target_distinct) {
      // Appendix §5.1: double the target length and continue the walk from
      // its current endpoint.
      ++result.extensions;
      segment_length *= 2;
    } else if (truncated_at < 0) {
      throw std::logic_error(
          "build_phase_walk: reached target distinct without a truncation cut");
    }
  }

  result.walk = std::move(phase_walk);
  result.final_length = static_cast<std::int64_t>(result.walk.size()) - 1;
  return result;
}

}  // namespace cliquest::core
