#pragma once

// Per-run and per-phase round accounting for the main sampler.

#include <cstdint>
#include <string>
#include <vector>

#include "cclique/meter.hpp"

namespace cliquest::core {

struct PhaseStats {
  int phase_index = 0;
  int active_vertices = 0;    // |S| at phase start
  int target_distinct = 0;    // rho_t for this phase
  int new_vertices = 0;       // first-visit edges produced
  std::int64_t walk_length = 0;  // length of the phase walk actually built
  int levels = 0;             // level iterations across all segments
  int extensions = 0;         // Las Vegas extensions used
  std::int64_t rounds = 0;    // rounds charged during this phase
};

struct RoundReport {
  cclique::Meter meter;
  std::vector<PhaseStats> phases;

  /// Schur-cache traffic of this draw: phases whose per-active-set
  /// derivative state came from the sampler's cache vs. phases that had to
  /// build it. Both zero when the cache is disabled or the draw stayed in
  /// phase 1.
  std::int64_t schur_cache_hits = 0;
  std::int64_t schur_cache_misses = 0;

  std::int64_t total_rounds() const { return meter.total_rounds(); }

  /// Human-readable run anatomy: per-phase table plus the meter categories.
  std::string summary() const;
};

}  // namespace cliquest::core
