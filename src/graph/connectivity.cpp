#include "graph/connectivity.hpp"

#include <queue>
#include <stdexcept>

namespace cliquest::graph {

bool is_connected(const Graph& g) {
  if (g.vertex_count() == 0) return true;
  const std::vector<int> dist = bfs_distances(g, 0);
  for (int d : dist)
    if (d < 0) return false;
  return true;
}

std::vector<int> bfs_distances(const Graph& g, int source) {
  std::vector<int> dist(static_cast<std::size_t>(g.vertex_count()), -1);
  if (g.vertex_count() == 0) return dist;
  std::queue<int> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (const Neighbor& nb : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(nb.to)] >= 0) continue;
      dist[static_cast<std::size_t>(nb.to)] = dist[static_cast<std::size_t>(u)] + 1;
      frontier.push(nb.to);
    }
  }
  return dist;
}

DisjointSets::DisjointSets(int n)
    : parent_(static_cast<std::size_t>(n)), size_(static_cast<std::size_t>(n), 1), sets_(n) {
  if (n < 0) throw std::invalid_argument("DisjointSets: negative size");
  for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
}

int DisjointSets::find(int x) {
  while (parent_[static_cast<std::size_t>(x)] != x) {
    parent_[static_cast<std::size_t>(x)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

bool DisjointSets::unite(int a, int b) {
  int ra = find(a);
  int rb = find(b);
  if (ra == rb) return false;
  if (size_[static_cast<std::size_t>(ra)] < size_[static_cast<std::size_t>(rb)])
    std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
  --sets_;
  return true;
}

bool is_spanning_tree(const Graph& g, const std::vector<std::pair<int, int>>& edges) {
  const int n = g.vertex_count();
  if (static_cast<int>(edges.size()) != n - 1) return false;
  DisjointSets dsu(n);
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= n || v < 0 || v >= n) return false;
    if (!g.has_edge(u, v)) return false;
    if (!dsu.unite(u, v)) return false;  // cycle
  }
  return dsu.set_count() == 1;
}

}  // namespace cliquest::graph
