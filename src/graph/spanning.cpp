#include "graph/spanning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/connectivity.hpp"
#include "graph/laplacian.hpp"
#include "linalg/decompose.hpp"

namespace cliquest::graph {

double log_tree_count(const Graph& g) {
  const int n = g.vertex_count();
  if (n < 1) throw std::invalid_argument("log_tree_count: empty graph");
  if (n == 1) return 0.0;
  if (!is_connected(g)) throw std::invalid_argument("log_tree_count: graph disconnected");
  const linalg::Matrix l = laplacian(g);
  // Minor: delete the last row and column.
  std::vector<int> ids(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) ids[static_cast<std::size_t>(i)] = i;
  const linalg::Lu lu(l.submatrix(ids, ids));
  if (lu.singular() || lu.det_sign() <= 0)
    throw std::runtime_error("log_tree_count: Laplacian minor not positive definite");
  return lu.log_abs_det();
}

long long tree_count(const Graph& g) {
  const double log_count = log_tree_count(g);
  if (log_count > 42.9)  // ln(2^62)
    throw std::overflow_error("tree_count: too many trees; use log_tree_count");
  return static_cast<long long>(std::llround(std::exp(log_count)));
}

TreeEdges canonical_tree(std::vector<std::pair<int, int>> edges) {
  for (auto& [u, v] : edges)
    if (u > v) std::swap(u, v);
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::string tree_key(const TreeEdges& edges) {
  std::string key;
  key.reserve(edges.size() * 8);
  for (const auto& [u, v] : edges) {
    key += std::to_string(u);
    key += '-';
    key += std::to_string(v);
    key += ';';
  }
  return key;
}

namespace {

// Depth-first enumeration over edges: each edge is either included (if it
// joins two components) or excluded (if the remaining edges can still span).
struct Enumerator {
  const Graph& g;
  std::size_t max_trees;
  std::vector<TreeEdges>& out;
  std::vector<std::pair<int, int>> chosen;

  // Returns the number of components if we union `from..end` edges onto the
  // current partial forest; used to prune branches that cannot span.
  bool can_span(DisjointSets dsu, std::size_t from) const {
    const auto all = g.edges();
    for (std::size_t i = from; i < all.size(); ++i) dsu.unite(all[i].u, all[i].v);
    return dsu.set_count() == 1;
  }

  void recurse(std::size_t edge_index, DisjointSets dsu) {
    if (dsu.set_count() == 1) {
      out.push_back(canonical_tree(chosen));
      if (out.size() > max_trees)
        throw std::overflow_error("enumerate_spanning_trees: too many trees");
      return;
    }
    if (edge_index >= g.edges().size()) return;
    const Edge& e = g.edges()[edge_index];

    // Branch 1: include the edge when it joins two components.
    DisjointSets with = dsu;
    if (with.unite(e.u, e.v)) {
      chosen.emplace_back(e.u, e.v);
      recurse(edge_index + 1, with);
      chosen.pop_back();
    }
    // Branch 2: exclude the edge, but only if spanning is still achievable.
    if (can_span(dsu, edge_index + 1)) recurse(edge_index + 1, dsu);
  }
};

}  // namespace

std::vector<TreeEdges> enumerate_spanning_trees(const Graph& g, std::size_t max_trees) {
  if (g.vertex_count() == 0) return {};
  if (!is_connected(g))
    throw std::invalid_argument("enumerate_spanning_trees: graph disconnected");
  std::vector<TreeEdges> out;
  Enumerator e{g, max_trees, out, {}};
  e.recurse(0, DisjointSets(g.vertex_count()));
  return out;
}

}  // namespace cliquest::graph
