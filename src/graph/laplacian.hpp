#pragma once

// Graph Laplacians (§1.7): L[i][i] = weighted degree, L[i][j] = -w(i,j).
// The Laplacian is the bridge between graphs and the Schur complement
// machinery, and its minors count spanning trees (Matrix-Tree theorem).

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"

namespace cliquest::graph {

linalg::Matrix laplacian(const Graph& g);

/// Reconstructs the unique simple weighted graph whose Laplacian is l.
/// Off-diagonal entries above -tol are treated as absent edges. Throws if l
/// is not (numerically) a Laplacian: symmetric with near-zero row sums.
Graph graph_from_laplacian(const linalg::Matrix& l, double tol = 1e-9);

}  // namespace cliquest::graph
