#include "graph/graph.hpp"

#include <stdexcept>

namespace cliquest::graph {

Graph::Graph(int vertex_count) : adjacency_(static_cast<std::size_t>(vertex_count)) {
  if (vertex_count < 0) throw std::invalid_argument("Graph: negative vertex count");
}

void Graph::check_vertex(int v) const {
  if (v < 0 || v >= vertex_count()) throw std::out_of_range("Graph: bad vertex id");
}

void Graph::add_edge(int u, int v, double weight) {
  check_vertex(u);
  check_vertex(v);
  if (u == v) throw std::invalid_argument("Graph::add_edge: self loop");
  if (weight <= 0.0) throw std::invalid_argument("Graph::add_edge: nonpositive weight");
  if (has_edge(u, v)) throw std::invalid_argument("Graph::add_edge: duplicate edge");
  edges_.push_back(Edge{u, v, weight});
  adjacency_[static_cast<std::size_t>(u)].push_back(Neighbor{v, weight});
  adjacency_[static_cast<std::size_t>(v)].push_back(Neighbor{u, weight});
}

bool Graph::has_edge(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  const auto& shorter = degree(u) <= degree(v) ? adjacency_[static_cast<std::size_t>(u)]
                                               : adjacency_[static_cast<std::size_t>(v)];
  const int target = degree(u) <= degree(v) ? v : u;
  for (const Neighbor& nb : shorter)
    if (nb.to == target) return true;
  return false;
}

double Graph::edge_weight(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  for (const Neighbor& nb : adjacency_[static_cast<std::size_t>(u)])
    if (nb.to == v) return nb.weight;
  return 0.0;
}

std::span<const Neighbor> Graph::neighbors(int v) const {
  check_vertex(v);
  return adjacency_[static_cast<std::size_t>(v)];
}

int Graph::degree(int v) const {
  check_vertex(v);
  return static_cast<int>(adjacency_[static_cast<std::size_t>(v)].size());
}

double Graph::weighted_degree(int v) const {
  check_vertex(v);
  double total = 0.0;
  for (const Neighbor& nb : adjacency_[static_cast<std::size_t>(v)]) total += nb.weight;
  return total;
}

int Graph::degree_within(int u, std::span<const char> in_set) const {
  check_vertex(u);
  if (static_cast<int>(in_set.size()) != vertex_count())
    throw std::invalid_argument("Graph::degree_within: mask size mismatch");
  int count = 0;
  for (const Neighbor& nb : adjacency_[static_cast<std::size_t>(u)])
    if (in_set[static_cast<std::size_t>(nb.to)]) ++count;
  return count;
}

std::size_t Graph::memory_bytes() const {
  std::size_t bytes = edges_.size() * sizeof(Edge) +
                      adjacency_.size() * sizeof(std::vector<Neighbor>);
  for (const std::vector<Neighbor>& list : adjacency_)
    bytes += list.size() * sizeof(Neighbor);
  return bytes;
}

}  // namespace cliquest::graph
