#pragma once

// Electrical quantities of a graph: effective resistances, commute times and
// Kirchhoff's spanning-tree edge marginals.
//
// These back three validation tools for the samplers:
//  * Pr[e in UST] = w(e) * R_eff(e) (Kirchhoff), checkable without
//    enumerating trees, so sampler laws can be tested at larger n;
//  * Foster's theorem sum_e w(e) R_eff(e) = n - 1 as a global invariant;
//  * Schur complements preserve effective resistance between retained
//    vertices — a sharp correctness check of the §1.7 machinery.

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"

namespace cliquest::graph {

/// All-pairs effective resistance matrix (symmetric, zero diagonal).
/// Requires a connected graph. O(n^3).
linalg::Matrix effective_resistance_matrix(const Graph& g);

/// Effective resistance between one pair (one linear solve).
double effective_resistance(const Graph& g, int u, int v);

/// Expected commute time u -> v -> u of the natural random walk:
/// C(u, v) = 2 W R_eff(u, v) with W the total edge weight
/// (Chandra-Raghavan-Ruzzo-Smolensky).
double commute_time(const Graph& g, int u, int v);

/// Kirchhoff marginal Pr[e in uniform spanning tree] for every edge,
/// indexed like g.edges().
std::vector<double> spanning_tree_edge_marginals(const Graph& g);

/// Foster's theorem check value: sum_e w(e) R_eff(e); equals n - 1 exactly
/// on any connected graph.
double foster_sum(const Graph& g);

}  // namespace cliquest::graph
