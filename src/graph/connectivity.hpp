#pragma once

// Connectivity utilities: BFS reachability, connectedness, and a disjoint-set
// forest used by the Kruskal baseline and spanning-tree validation.

#include <vector>

#include "graph/graph.hpp"

namespace cliquest::graph {

bool is_connected(const Graph& g);

/// BFS distances from source; unreachable vertices get -1.
std::vector<int> bfs_distances(const Graph& g, int source);

/// Union-find with path compression and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(int n);
  int find(int x);
  /// Merges the sets of a and b; returns false if already joined.
  bool unite(int a, int b);
  int set_count() const { return sets_; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int sets_;
};

/// True if `edges` (as vertex pairs) forms a spanning tree of g: n-1 edges,
/// all present in g, and acyclic/connected.
bool is_spanning_tree(const Graph& g, const std::vector<std::pair<int, int>>& edges);

}  // namespace cliquest::graph
