#include "graph/laplacian.hpp"

#include <cmath>
#include <stdexcept>

namespace cliquest::graph {

linalg::Matrix laplacian(const Graph& g) {
  const int n = g.vertex_count();
  linalg::Matrix l(n, n, 0.0);
  for (const Edge& e : g.edges()) {
    l(e.u, e.u) += e.weight;
    l(e.v, e.v) += e.weight;
    l(e.u, e.v) -= e.weight;
    l(e.v, e.u) -= e.weight;
  }
  return l;
}

Graph graph_from_laplacian(const linalg::Matrix& l, double tol) {
  if (l.rows() != l.cols()) throw std::invalid_argument("graph_from_laplacian: not square");
  const int n = l.rows();
  for (int i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < n; ++j) {
      if (std::abs(l(i, j) - l(j, i)) > tol)
        throw std::invalid_argument("graph_from_laplacian: not symmetric");
      row_sum += l(i, j);
    }
    if (std::abs(row_sum) > tol * std::max(1.0, l.max_abs()))
      throw std::invalid_argument("graph_from_laplacian: row sums not zero");
  }
  Graph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double w = -l(i, j);
      if (w > tol) g.add_edge(i, j, w);
    }
  return g;
}

}  // namespace cliquest::graph
