#pragma once

// Graph families used across tests, examples and benches.
//
// The paper's claims are exercised on: dense random graphs and expanders
// (G(n,p) with p >= log n / n, random regular), the highly irregular
// K_{n-sqrt(n), sqrt(n)} family with O(n log n) cover time (§1.2), slow-cover
// families (path, lollipop: the Theta(mn) cover-time worst case), and the
// star of Figure 2.

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace cliquest::graph {

Graph complete(int n);
Graph path(int n);
Graph cycle(int n);

/// Star with center 0 and n-1 leaves.
Graph star(int n);

/// Wheel: cycle 0..n-2 plus hub n-1 joined to all cycle vertices.
Graph wheel(int n);

Graph grid(int rows, int cols);

/// Complete bipartite K_{a,b}: left part 0..a-1, right part a..a+b-1.
Graph complete_bipartite(int a, int b);

/// The paper's K_{n-sqrt(n), sqrt(n)} example of a dense irregular graph with
/// O(n log n) cover time.
Graph unbalanced_bipartite(int n);

/// Two cliques of size k bridged by a single edge.
Graph barbell(int k);

/// Lollipop: clique of size k with a path of length tail attached; the
/// classic Theta(n^3) cover-time family.
Graph lollipop(int k, int tail);

/// Erdos-Renyi G(n, p) conditioned on being connected (resamples; throws
/// after too many failures, so choose p comfortably above the threshold).
Graph gnp_connected(int n, double p, util::Rng& rng);

/// Random d-regular-ish graph via the pairing model with collision retries;
/// conditioned on connectivity. Requires n*d even, d >= 3 for whp success.
Graph random_regular(int n, int d, util::Rng& rng);

/// Theta graph: two endpoints joined by three disjoint paths of the given
/// inner lengths (number of internal vertices per path). Small tree-count
/// family convenient for exact distribution tests.
Graph theta(int inner_a, int inner_b, int inner_c);

}  // namespace cliquest::graph
