#pragma once

// Simple undirected weighted graph.
//
// Vertices are 0..n-1; edges carry positive weights (the paper allows
// positive integer weights bounded by a polynomial; the Schur complement
// graphs that arise after phase 1 are real-weighted, so weights are doubles).
// The representation is an edge list plus an adjacency index, which matches
// both the Congested Clique hosting model (machine i holds vertex i and its
// incident edges) and the linear-algebra consumers.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace cliquest::graph {

struct Edge {
  int u = 0;
  int v = 0;
  double weight = 1.0;
};

/// Half-edge stored in adjacency lists: the far endpoint plus the weight.
struct Neighbor {
  int to = 0;
  double weight = 1.0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int vertex_count);

  int vertex_count() const { return static_cast<int>(adjacency_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  /// Adds an undirected edge; requires u != v, valid ids, weight > 0, and no
  /// existing {u, v} edge (the graph is simple).
  void add_edge(int u, int v, double weight = 1.0);

  bool has_edge(int u, int v) const;

  /// Weight of edge {u, v}; 0 if absent.
  double edge_weight(int u, int v) const;

  std::span<const Neighbor> neighbors(int v) const;

  /// Number of incident edges.
  int degree(int v) const;

  /// Sum of incident edge weights.
  double weighted_degree(int v) const;

  std::span<const Edge> edges() const { return edges_; }

  /// Number of neighbors of u inside the vertex set marked by in_set.
  /// This is the deg_S(u) quantity of the shortcut-graph sampler (§2.2).
  int degree_within(int u, std::span<const char> in_set) const;

  /// Heap bytes held by the edge list and adjacency index; feeds the byte
  /// accounting of the engine's memory-budgeted sampler pool.
  std::size_t memory_bytes() const;

 private:
  void check_vertex(int v) const;

  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace cliquest::graph
