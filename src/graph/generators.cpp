#include "graph/generators.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/connectivity.hpp"

namespace cliquest::graph {

Graph complete(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph path(int n) {
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle(int n) {
  if (n < 3) throw std::invalid_argument("cycle: need n >= 3");
  Graph g = path(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph star(int n) {
  if (n < 2) throw std::invalid_argument("star: need n >= 2");
  Graph g(n);
  for (int v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph wheel(int n) {
  if (n < 4) throw std::invalid_argument("wheel: need n >= 4");
  Graph g(n);
  const int hub = n - 1;
  for (int v = 0; v + 1 < hub; ++v) g.add_edge(v, v + 1);
  g.add_edge(hub - 1, 0);
  for (int v = 0; v < hub; ++v) g.add_edge(hub, v);
  return g;
}

Graph grid(int rows, int cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("grid: bad shape");
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  return g;
}

Graph complete_bipartite(int a, int b) {
  if (a < 1 || b < 1) throw std::invalid_argument("complete_bipartite: bad sizes");
  Graph g(a + b);
  for (int u = 0; u < a; ++u)
    for (int v = 0; v < b; ++v) g.add_edge(u, a + v);
  return g;
}

Graph unbalanced_bipartite(int n) {
  const int small = static_cast<int>(std::floor(std::sqrt(static_cast<double>(n))));
  if (small < 1 || n - small < 1)
    throw std::invalid_argument("unbalanced_bipartite: n too small");
  return complete_bipartite(n - small, small);
}

Graph barbell(int k) {
  if (k < 2) throw std::invalid_argument("barbell: need k >= 2");
  Graph g(2 * k);
  for (int u = 0; u < k; ++u)
    for (int v = u + 1; v < k; ++v) {
      g.add_edge(u, v);
      g.add_edge(k + u, k + v);
    }
  g.add_edge(k - 1, k);
  return g;
}

Graph lollipop(int k, int tail) {
  if (k < 2 || tail < 1) throw std::invalid_argument("lollipop: bad shape");
  Graph g(k + tail);
  for (int u = 0; u < k; ++u)
    for (int v = u + 1; v < k; ++v) g.add_edge(u, v);
  for (int t = 0; t < tail; ++t) g.add_edge(k - 1 + t, k + t);
  return g;
}

Graph gnp_connected(int n, double p, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("gnp_connected: need n >= 2");
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument("gnp_connected: bad p");
  constexpr int kMaxAttempts = 200;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Graph g(n);
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v)
        if (rng.bernoulli(p)) g.add_edge(u, v);
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("gnp_connected: failed to draw a connected graph");
}

Graph random_regular(int n, int d, util::Rng& rng) {
  if (d < 1 || d >= n) throw std::invalid_argument("random_regular: bad degree");
  if ((static_cast<long long>(n) * d) % 2 != 0)
    throw std::invalid_argument("random_regular: n*d must be even");
  // Incremental pairing with local retry (Steger-Wormald style): draw random
  // stub pairs and skip loop/multi-edge pairs instead of restarting the whole
  // pairing. Asymptotically near-uniform and succeeds whp for d = o(n^{1/3}),
  // unlike full-restart rejection whose acceptance decays like e^{-Theta(d^2)}.
  constexpr int kMaxAttempts = 200;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
    for (int v = 0; v < n; ++v)
      for (int i = 0; i < d; ++i) stubs.push_back(v);
    Graph g(n);
    bool stuck = false;
    while (!stubs.empty() && !stuck) {
      // Try a few random pairs from the remaining stubs before declaring the
      // partial pairing unextendable.
      constexpr int kPairTries = 64;
      bool paired = false;
      for (int t = 0; t < kPairTries && !paired; ++t) {
        const std::size_t i = rng.uniform_below(stubs.size());
        std::size_t j = rng.uniform_below(stubs.size() - 1);
        if (j >= i) ++j;
        const int u = stubs[i];
        const int v = stubs[j];
        if (u == v || g.has_edge(u, v)) continue;
        g.add_edge(u, v);
        // Remove the two stubs (larger index first).
        const std::size_t hi = std::max(i, j), lo = std::min(i, j);
        stubs[hi] = stubs.back();
        stubs.pop_back();
        stubs[lo] = stubs.back();
        stubs.pop_back();
        paired = true;
      }
      stuck = !paired;
    }
    if (!stuck && is_connected(g)) return g;
  }
  throw std::runtime_error("random_regular: failed to draw a simple connected graph");
}

Graph theta(int inner_a, int inner_b, int inner_c) {
  if (inner_a < 0 || inner_b < 0 || inner_c < 0)
    throw std::invalid_argument("theta: negative inner length");
  // Two terminals 0, 1; each path contributes its internal vertices in order.
  Graph g(2 + inner_a + inner_b + inner_c);
  int next = 2;
  auto add_path = [&g, &next](int inner) {
    if (inner == 0) {
      if (!g.has_edge(0, 1)) g.add_edge(0, 1);
      return;
    }
    int prev = 0;
    for (int i = 0; i < inner; ++i) {
      g.add_edge(prev, next);
      prev = next++;
    }
    g.add_edge(prev, 1);
  };
  add_path(inner_a);
  add_path(inner_b);
  add_path(inner_c);
  return g;
}

}  // namespace cliquest::graph
