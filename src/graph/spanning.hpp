#pragma once

// Spanning-tree counting, enumeration, and canonical encoding.
//
// The Matrix-Tree theorem (determinant of any Laplacian minor) provides the
// exact number of spanning trees; enumeration provides the full support for
// small graphs so that sampler outputs can be tested against the uniform
// distribution by total variation distance.

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace cliquest::graph {

/// log of the weighted spanning tree count (Matrix-Tree; weight of a tree =
/// product of its edge weights). Requires a connected graph with >= 1 vertex.
double log_tree_count(const Graph& g);

/// Exact spanning-tree count rounded to the nearest integer; throws if the
/// count exceeds 2^62 (use log_tree_count instead).
long long tree_count(const Graph& g);

/// A spanning tree as a sorted list of (min, max) vertex pairs.
using TreeEdges = std::vector<std::pair<int, int>>;

/// Canonical string key for a tree, suitable for frequency tables.
std::string tree_key(const TreeEdges& edges);

/// Normalizes arbitrary edge ordering/orientation into a canonical TreeEdges.
TreeEdges canonical_tree(std::vector<std::pair<int, int>> edges);

/// Enumerates every spanning tree of g (as canonical TreeEdges). Throws if
/// the count exceeds max_trees — callers choose graphs that are small enough.
std::vector<TreeEdges> enumerate_spanning_trees(const Graph& g,
                                                std::size_t max_trees = 200000);

}  // namespace cliquest::graph
