#include "graph/resistance.hpp"

#include <stdexcept>

#include "graph/connectivity.hpp"
#include "graph/laplacian.hpp"
#include "linalg/decompose.hpp"

namespace cliquest::graph {
namespace {

/// Inverse of the Laplacian grounded at vertex 0, padded back to n x n with
/// zeros in row/column 0. This is a generalized inverse adequate for
/// resistance computations: R(u, v) = M[u,u] + M[v,v] - 2 M[u,v].
linalg::Matrix grounded_inverse(const Graph& g) {
  const int n = g.vertex_count();
  if (n < 1) throw std::invalid_argument("resistance: empty graph");
  if (!is_connected(g)) throw std::invalid_argument("resistance: graph disconnected");
  linalg::Matrix padded(n, n, 0.0);
  if (n == 1) return padded;
  const linalg::Matrix l = laplacian(g);
  std::vector<int> keep;
  keep.reserve(static_cast<std::size_t>(n) - 1);
  for (int v = 1; v < n; ++v) keep.push_back(v);
  // The grounded Laplacian is SPD on a connected graph.
  const linalg::Matrix reduced = l.submatrix(keep, keep);
  const linalg::Matrix inv =
      linalg::cholesky_solve(reduced, linalg::Matrix::identity(n - 1));
  for (int i = 0; i < n - 1; ++i)
    for (int j = 0; j < n - 1; ++j) padded(i + 1, j + 1) = inv(i, j);
  return padded;
}

}  // namespace

linalg::Matrix effective_resistance_matrix(const Graph& g) {
  const int n = g.vertex_count();
  const linalg::Matrix m = grounded_inverse(g);
  linalg::Matrix r(n, n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) r(u, v) = m(u, u) + m(v, v) - 2.0 * m(u, v);
  return r;
}

double effective_resistance(const Graph& g, int u, int v) {
  const int n = g.vertex_count();
  if (u < 0 || u >= n || v < 0 || v >= n)
    throw std::out_of_range("effective_resistance: bad vertex");
  if (u == v) return 0.0;
  // One grounded solve: current injected at u, extracted at v, ground at u.
  if (!is_connected(g)) throw std::invalid_argument("resistance: graph disconnected");
  const linalg::Matrix l = laplacian(g);
  std::vector<int> keep;
  keep.reserve(static_cast<std::size_t>(n) - 1);
  for (int w = 0; w < n; ++w)
    if (w != u) keep.push_back(w);
  std::vector<double> rhs(static_cast<std::size_t>(n) - 1, 0.0);
  for (std::size_t i = 0; i < keep.size(); ++i)
    if (keep[i] == v) rhs[i] = 1.0;
  const linalg::Lu lu(l.submatrix(keep, keep));
  const std::vector<double> x = lu.solve(rhs);
  for (std::size_t i = 0; i < keep.size(); ++i)
    if (keep[i] == v) return x[i];  // potential difference v - u with phi_u = 0
  throw std::logic_error("effective_resistance: vertex lookup failed");
}

double commute_time(const Graph& g, int u, int v) {
  double total_weight = 0.0;
  for (const Edge& e : g.edges()) total_weight += e.weight;
  return 2.0 * total_weight * effective_resistance(g, u, v);
}

std::vector<double> spanning_tree_edge_marginals(const Graph& g) {
  const linalg::Matrix r = effective_resistance_matrix(g);
  std::vector<double> marginals;
  marginals.reserve(g.edges().size());
  for (const Edge& e : g.edges()) marginals.push_back(e.weight * r(e.u, e.v));
  return marginals;
}

double foster_sum(const Graph& g) {
  double total = 0.0;
  for (double m : spanning_tree_edge_marginals(g)) total += m;
  return total;
}

}  // namespace cliquest::graph
