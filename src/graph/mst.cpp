#include "graph/mst.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/connectivity.hpp"

namespace cliquest::graph {

TreeEdges random_weight_mst(const Graph& g, util::Rng& rng) {
  const int n = g.vertex_count();
  if (n == 0) return {};
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(g.edges().size());
  for (std::size_t i = 0; i < g.edges().size(); ++i)
    order.emplace_back(rng.next_double(), i);
  std::sort(order.begin(), order.end());

  DisjointSets dsu(n);
  std::vector<std::pair<int, int>> picked;
  picked.reserve(static_cast<std::size_t>(n) - 1);
  for (const auto& [w, idx] : order) {
    const Edge& e = g.edges()[idx];
    if (dsu.unite(e.u, e.v)) picked.emplace_back(e.u, e.v);
  }
  if (static_cast<int>(picked.size()) != n - 1)
    throw std::invalid_argument("random_weight_mst: graph disconnected");
  return canonical_tree(std::move(picked));
}

}  // namespace cliquest::graph
