#pragma once

// Random-weight minimum spanning tree baseline.
//
// Section 1.4 of the paper warns that the tempting O(1)-round approach —
// assign i.i.d. uniform weights and take the MST — does NOT sample spanning
// trees uniformly. This module implements that candidate so the E10 bench can
// demonstrate the bias empirically (the negative control).

#include "graph/graph.hpp"
#include "graph/spanning.hpp"
#include "util/rng.hpp"

namespace cliquest::graph {

/// Kruskal MST after assigning each edge an independent U[0,1) weight.
/// Requires a connected graph.
TreeEdges random_weight_mst(const Graph& g, util::Rng& rng);

}  // namespace cliquest::graph
