#include "schur/schur_cache.hpp"

#include <utility>

#include "util/rng.hpp"

namespace cliquest::schur {

std::size_t PhaseDerivatives::memory_bytes() const {
  std::size_t bytes = transition.memory_bytes() + shortcut.memory_bytes() +
                      prepared.memory_bytes();
  for (const linalg::Matrix& power : powers) bytes += power.memory_bytes();
  return bytes;
}

SchurCache::SchurCache(std::size_t budget_bytes) : budget_bytes_(budget_bytes) {}

std::uint64_t SchurCache::fingerprint(std::span<const int> active) {
  // SplitMix64-chained digest of the vertex list, seeded with its length —
  // the same shape of structural fingerprint the serving pool uses for
  // graphs, specialized to an id sequence.
  std::uint64_t digest =
      util::splitmix64(0x5c42ac7e5e7ULL + static_cast<std::uint64_t>(active.size()));
  for (int v : active)
    digest = util::splitmix64(digest ^ (static_cast<std::uint64_t>(v) + 1));
  return digest;
}

std::shared_ptr<const PhaseDerivatives> SchurCache::get_or_build(
    std::span<const int> active, const std::function<PhaseDerivatives()>& build,
    bool* hit) {
  if (enabled()) {
    const util::MutexLock lock(mutex_);
    const auto it = entries_.find(active);  // transparent: no key copy
    if (it != entries_.end()) {
      lru_.splice(lru_.end(), lru_, it->second.lru_it);  // hottest position
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      return it->second.derivatives;
    }
    ++stats_.misses;
  }
  if (hit != nullptr) *hit = false;

  // Build outside the mutex: concurrent draws on other keys (or even racing
  // builders of this key) keep moving; results are identical either way.
  auto derivatives = std::make_shared<const PhaseDerivatives>(build());
  if (!enabled()) return derivatives;

  const std::size_t bytes = derivatives->memory_bytes();
  if (bytes > budget_bytes_) return derivatives;  // oversized: serve, never retain

  const util::MutexLock lock(mutex_);
  auto [it, inserted] =
      entries_.emplace(std::vector<int>(active.begin(), active.end()), Entry{});
  if (!inserted) {
    // A racing builder landed first; its entry is identical — reuse it.
    lru_.splice(lru_.end(), lru_, it->second.lru_it);
    return it->second.derivatives;
  }
  it->second.derivatives = derivatives;
  it->second.bytes = bytes;
  it->second.lru_it = lru_.insert(lru_.end(), &it->first);
  resident_bytes_ += bytes;
  evict_to_budget_locked();
  return derivatives;
}

void SchurCache::evict_to_budget_locked() {
  while (resident_bytes_ > budget_bytes_ && !lru_.empty()) {
    const std::vector<int>* coldest = lru_.front();
    lru_.pop_front();
    const auto it = entries_.find(*coldest);
    resident_bytes_ -= it->second.bytes;
    entries_.erase(it);  // in-flight phases hold their own shared_ptr
    ++stats_.evictions;
  }
}

std::size_t SchurCache::trim() {
  const util::MutexLock lock(mutex_);
  const std::size_t released = resident_bytes_;
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  if (released > 0) ++stats_.trims;
  return released;
}

std::size_t SchurCache::resident_bytes() const {
  const util::MutexLock lock(mutex_);
  return resident_bytes_;
}

SchurCacheStats SchurCache::stats() const {
  const util::MutexLock lock(mutex_);
  SchurCacheStats snapshot = stats_;
  snapshot.resident_bytes = resident_bytes_;
  snapshot.entry_count = static_cast<int>(entries_.size());
  return snapshot;
}

}  // namespace cliquest::schur
