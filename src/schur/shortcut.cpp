#include "schur/shortcut.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "linalg/decompose.hpp"
#include "util/discrete.hpp"
#include "walk/transition.hpp"

namespace cliquest::schur {
namespace {

std::vector<char> subset_mask(const graph::Graph& g, const std::vector<int>& s) {
  if (s.empty()) throw std::invalid_argument("shortcut: empty subset");
  std::vector<char> in_s(static_cast<std::size_t>(g.vertex_count()), 0);
  for (int v : s) {
    if (v < 0 || v >= g.vertex_count())
      throw std::out_of_range("shortcut: bad vertex id");
    in_s[static_cast<std::size_t>(v)] = 1;
  }
  return in_s;
}

}  // namespace

linalg::Matrix shortcut_transition(const graph::Graph& g, const std::vector<int>& s) {
  const std::vector<char> in_s = subset_mask(g, s);
  const int n = g.vertex_count();
  const linalg::Matrix p = walk::transition_matrix(g);

  std::vector<int> outside;  // V \ S
  for (int v = 0; v < n; ++v)
    if (!in_s[static_cast<std::size_t>(v)]) outside.push_back(v);
  const int t_dim = static_cast<int>(outside.size());

  // One-step absorption probabilities b[x] = P[x -> S] for x outside S.
  std::vector<double> absorb(static_cast<std::size_t>(t_dim), 0.0);
  for (int i = 0; i < t_dim; ++i)
    for (const graph::Neighbor& nb : g.neighbors(outside[static_cast<std::size_t>(i)]))
      if (in_s[static_cast<std::size_t>(nb.to)])
        absorb[static_cast<std::size_t>(i)] += p(outside[static_cast<std::size_t>(i)], nb.to);

  linalg::Matrix q(n, n, 0.0);

  // j = 1 term: the walk's very first step lands in S, so the predecessor is
  // the start vertex itself.
  for (int u = 0; u < n; ++u)
    for (const graph::Neighbor& nb : g.neighbors(u))
      if (in_s[static_cast<std::size_t>(nb.to)]) q(u, u) += p(u, nb.to);

  if (t_dim == 0) return q;

  // N = (I - T)^{-1} over V \ S; N[a, y] is the expected number of visits to
  // y before absorption starting from a.
  linalg::Matrix i_minus_t(t_dim, t_dim, 0.0);
  for (int a = 0; a < t_dim; ++a) {
    i_minus_t(a, a) = 1.0;
    for (int y = 0; y < t_dim; ++y)
      i_minus_t(a, y) -= p(outside[static_cast<std::size_t>(a)],
                           outside[static_cast<std::size_t>(y)]);
  }
  const linalg::Matrix fundamental = linalg::Lu(i_minus_t).inverse();

  // reach[u, y] = sum_a P[u, a] N[a, y] over a outside S, streamed row-wise:
  // the a-loop is outermost so N's rows are read contiguously (P[u, a] is
  // adjacency-sparse, so most a iterations skip). The per-(u, y) accumulation
  // order over a is unchanged, so the result is bit-identical to the naive
  // y-inner form this replaced — sampling through Q replays exactly.
  std::vector<double> reach(static_cast<std::size_t>(t_dim));
  for (int u = 0; u < n; ++u) {
    std::fill(reach.begin(), reach.end(), 0.0);
    for (int a = 0; a < t_dim; ++a) {
      const double step = p(u, outside[static_cast<std::size_t>(a)]);
      if (step == 0.0) continue;
      const std::span<const double> row = fundamental.row(a);
      for (int y = 0; y < t_dim; ++y)
        reach[static_cast<std::size_t>(y)] += step * row[static_cast<std::size_t>(y)];
    }
    for (int y = 0; y < t_dim; ++y)
      q(u, outside[static_cast<std::size_t>(y)]) +=
          reach[static_cast<std::size_t>(y)] * absorb[static_cast<std::size_t>(y)];
  }
  return q;
}

linalg::Matrix shortcut_transition_iterative(const graph::Graph& g,
                                             const std::vector<int>& s,
                                             int squarings) {
  if (squarings < 1 || squarings > 200)
    throw std::invalid_argument("shortcut_transition_iterative: bad squaring count");
  const std::vector<char> in_s = subset_mask(g, s);
  const int n = g.vertex_count();
  const linalg::Matrix p = walk::transition_matrix(g);

  // Corollary 2 auxiliary chain over L + R copies: index v' = v (left copy,
  // still walking) and v'' = n + v (right copy, absorbed). A left copy of u
  // moves to the left copy of v when v is outside S, and to its *own* right
  // copy with the total probability of stepping into S (recording u as the
  // predecessor of the S-entry).
  linalg::Matrix r(2 * n, 2 * n, 0.0);
  for (int u = 0; u < n; ++u) {
    r(n + u, n + u) = 1.0;
    double into_s = 0.0;
    for (const graph::Neighbor& nb : g.neighbors(u)) {
      if (in_s[static_cast<std::size_t>(nb.to)])
        into_s += p(u, nb.to);
      else
        r(u, nb.to) = p(u, nb.to);
    }
    r(u, n + u) = into_s;
  }
  for (int step = 0; step < squarings; ++step) r = r.multiply(r);

  linalg::Matrix q(n, n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) q(u, v) = r(u, n + v);
  return q;
}

int sample_first_visit_neighbor(const graph::Graph& g, std::span<const char> in_s,
                                const linalg::Matrix& q, int prev, int v,
                                util::Rng& rng) {
  const auto nbs = g.neighbors(v);
  if (nbs.empty()) throw std::invalid_argument("sample_first_visit_neighbor: isolated v");
  std::vector<double> weights(nbs.size(), 0.0);
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    const int u = nbs[i].to;
    // Pr[entered v | penultimate u] = w(u,v) / w_S(u); for unweighted graphs
    // this is the paper's 1 / deg_S(u).
    double w_into_s = 0.0;
    for (const graph::Neighbor& nb : g.neighbors(u))
      if (in_s[static_cast<std::size_t>(nb.to)]) w_into_s += nb.weight;
    // v in S is a neighbor of u, so w_S(u) > 0 whenever Q[prev, u] > 0.
    if (w_into_s > 0.0) weights[i] = q(prev, u) * (nbs[i].weight / w_into_s);
  }
  const int pick = util::sample_unnormalized(weights, rng);
  return nbs[static_cast<std::size_t>(pick)].to;
}

}  // namespace cliquest::schur
