#include "schur/schur_complement.hpp"

#include <stdexcept>
#include <vector>

#include "graph/laplacian.hpp"
#include "linalg/decompose.hpp"
#include "schur/shortcut.hpp"

namespace cliquest::schur {
namespace {

void check_subset(const graph::Graph& g, const std::vector<int>& s) {
  if (s.empty()) throw std::invalid_argument("schur: empty subset");
  std::vector<char> seen(static_cast<std::size_t>(g.vertex_count()), 0);
  for (int v : s) {
    if (v < 0 || v >= g.vertex_count()) throw std::out_of_range("schur: bad vertex id");
    if (seen[static_cast<std::size_t>(v)])
      throw std::invalid_argument("schur: duplicate vertex in subset");
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

std::vector<int> complement_of(const graph::Graph& g, const std::vector<int>& s) {
  std::vector<char> in_s(static_cast<std::size_t>(g.vertex_count()), 0);
  for (int v : s) in_s[static_cast<std::size_t>(v)] = 1;
  std::vector<int> c;
  c.reserve(static_cast<std::size_t>(g.vertex_count() - static_cast<int>(s.size())));
  for (int v = 0; v < g.vertex_count(); ++v)
    if (!in_s[static_cast<std::size_t>(v)]) c.push_back(v);
  return c;
}

linalg::Matrix schur_laplacian(const graph::Graph& g, const std::vector<int>& s) {
  const linalg::Matrix l = graph::laplacian(g);
  const std::vector<int> c = complement_of(g, s);
  const linalg::Matrix l_ss = l.submatrix(s, s);
  if (c.empty()) return l_ss;
  const linalg::Matrix l_cc = l.submatrix(c, c);
  const linalg::Matrix l_cs = l.submatrix(c, s);
  const linalg::Matrix l_sc = l.submatrix(s, c);
  // L_CC is SPD when G is connected and C is a proper subset, so Cholesky is
  // both fast and a structural sanity check.
  const linalg::Matrix solved = linalg::cholesky_solve(l_cc, l_cs);
  return l_ss - l_sc.multiply(solved);
}

}  // namespace

graph::Graph schur_complement(const graph::Graph& g, const std::vector<int>& s) {
  check_subset(g, s);
  return graph::graph_from_laplacian(schur_laplacian(g, s), 1e-9);
}

linalg::Matrix schur_transition(const graph::Graph& g, const std::vector<int>& s) {
  check_subset(g, s);
  const linalg::Matrix h = schur_laplacian(g, s);
  const int k = static_cast<int>(s.size());
  linalg::Matrix t(k, k, 0.0);
  for (int i = 0; i < k; ++i) {
    const double degree = h(i, i);
    if (degree <= 0.0) {
      if (k == 1) {
        // Single-vertex Schur graph: no transitions exist.
        continue;
      }
      throw std::runtime_error("schur_transition: zero degree in Schur graph");
    }
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      const double w = -h(i, j);
      t(i, j) = w > 0.0 ? w / degree : 0.0;
    }
  }
  return t;
}

linalg::Matrix schur_transition_iterative(const graph::Graph& g,
                                          const std::vector<int>& s, int squarings) {
  check_subset(g, s);
  const int k = static_cast<int>(s.size());
  // Corollary 3: with Q the shortcut transition matrix and R[u,v] =
  // 1/deg_S(u) for edges {u,v} into S, the matrix QR restricted to S gives
  // (up to row normalization that removes the diagonal) the Schur transition.
  const linalg::Matrix q = shortcut_transition_iterative(g, s, squarings);
  std::vector<char> in_s(static_cast<std::size_t>(g.vertex_count()), 0);
  for (int v : s) in_s[static_cast<std::size_t>(v)] = 1;

  const int n = g.vertex_count();
  linalg::Matrix r(n, n, 0.0);
  for (int u = 0; u < n; ++u) {
    const int ds = g.degree_within(u, in_s);
    if (ds == 0) {
      r(u, u) = 1.0;
      continue;
    }
    for (const graph::Neighbor& nb : g.neighbors(u))
      if (in_s[static_cast<std::size_t>(nb.to)]) r(u, nb.to) = 1.0 / ds;
  }
  const linalg::Matrix qr = q.multiply(r);

  linalg::Matrix t(k, k, 0.0);
  for (int i = 0; i < k; ++i) {
    const int u = s[static_cast<std::size_t>(i)];
    double off_diagonal = 0.0;
    for (int j = 0; j < k; ++j)
      if (j != i) off_diagonal += qr(u, s[static_cast<std::size_t>(j)]);
    if (off_diagonal <= 0.0) continue;  // isolated-in-S vertex (|S| == 1)
    for (int j = 0; j < k; ++j)
      if (j != i) t(i, j) = qr(u, s[static_cast<std::size_t>(j)]) / off_diagonal;
  }
  return t;
}

}  // namespace cliquest::schur
