#pragma once

// Schur complement graphs (paper §1.7, Definitions 1-2).
//
// For a connected weighted graph G and vertex subset S, Schur(G, S) is the
// weighted graph on S whose Laplacian is the Schur complement of L(G) onto S:
//     Schur(L, S) = L_SS - L_SC * (L_CC)^{-1} * L_CS,   C = V \ S.
// A random walk on Schur(G, S) is distributed exactly as the walk on G
// watched on S (Definition 2: S[u,v] = probability that v is the first
// vertex of S \ {u} visited by a G-walk from u).
//
// Two construction routes are provided:
//  * schur_complement: exact block elimination (Cholesky of L_CC, which is
//    SPD for a connected graph and proper subset C).
//  * schur_transition_iterative: the paper's §2.4 route (Corollary 3), which
//    builds the shortcut matrix Q by powering an absorbing chain and then
//    normalizes Q*R; used to validate the algebra and to charge the paper's
//    matmul round counts.

#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"

namespace cliquest::schur {

/// The Schur complement graph of g onto the vertices listed in s (indices
/// into g). Vertex i of the result corresponds to s[i]. Requires |s| >= 1,
/// distinct ids, and a connected g.
graph::Graph schur_complement(const graph::Graph& g, const std::vector<int>& s);

/// Transition matrix of the random walk on Schur(G, S), indexed like s.
/// Equivalent to transition_matrix(schur_complement(g, s)) but computed
/// directly; kept separate so callers can skip building the graph.
linalg::Matrix schur_transition(const graph::Graph& g, const std::vector<int>& s);

/// Definition-2 transition matrix via the paper's iterative route (§2.4
/// Corollary 3): S[u,v] proportional to (QR)[u,v] off-diagonal with
/// row-normalization removing self transitions. `iterations` bounds the
/// absorbing-chain powering (the paper uses O(n^3 log 1/delta) implicit
/// steps; powering needs only log2 of that many squarings).
linalg::Matrix schur_transition_iterative(const graph::Graph& g,
                                          const std::vector<int>& s,
                                          int squarings = 64);

}  // namespace cliquest::schur
