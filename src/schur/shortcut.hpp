#pragma once

// Shortcut graphs (paper §1.7, Definition 3) and first-visit-edge sampling
// (paper §2.2, Algorithm 4).
//
// For a G-walk from u, let j = min{i > 0 : x_i in S}. The shortcut
// transition matrix is Q[u, v] = Pr[x_{j-1} = v]: the distribution of the
// vertex visited immediately before the walk's first return to S. When the
// phase walk on Schur(G, S) first visits a vertex v from predecessor w, the
// first-visit edge (u, v) in G is sampled with probability proportional to
//     Q[w, u] * 1 / deg_S(u)        over neighbors u of v       (Bayes).

#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace cliquest::schur {

/// Exact Q via the absorbing-chain fundamental matrix: with T the transition
/// block over V \ S and b[x] the one-step probability of entering S from x,
///   Q[u, y] = (sum_a P[u,a] N[a,y]) * b[y]  for y in V \ S,  N = (I-T)^{-1},
///   Q[u, u] += P[u -> S]                    (the j = 1 term).
/// Requires s non-empty; rows are defined for every u in V.
linalg::Matrix shortcut_transition(const graph::Graph& g, const std::vector<int>& s);

/// The paper's §2.4 (Corollary 2) construction: power the 2n-state auxiliary
/// absorbing chain R (L-copies keep walking until they step into S, R-copies
/// absorb) and read Q[u, v] = R^inf[u', v'']. `squarings` repeated squarings
/// approximate the limit; 64 squarings reach k = 2^64 steps, far past any
/// polynomial cover time.
linalg::Matrix shortcut_transition_iterative(const graph::Graph& g,
                                             const std::vector<int>& s,
                                             int squarings = 64);

/// Algorithm 4 sampling step: the first-visit edge of v, given the walk on
/// Schur(G, S) moved to v from `prev` (both vertex ids of g, in S). Returns
/// the neighbor u of v such that (u, v) is the sampled first-visit edge.
int sample_first_visit_neighbor(const graph::Graph& g, std::span<const char> in_s,
                                const linalg::Matrix& q, int prev, int v,
                                util::Rng& rng);

}  // namespace cliquest::schur
