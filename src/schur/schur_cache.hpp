#pragma once

// Fingerprint-keyed cache of per-active-set derivative state (ROADMAP (c)).
//
// Every phase after the first derives the same three objects from its active
// vertex set S: the Schur transition matrix of G onto S, the shortcut matrix
// Q, and the power table of the Schur transition that the top-down filling
// engine consumes. They depend only on (G, S) — so when active sets recur
// across draws of one prepared sampler (structured graphs, small rho, end-
// game phases with few unvisited vertices), every recurrence re-derives
// identical matrices. SchurCache keeps them behind a byte-budgeted LRU keyed
// by a fingerprint of the active set (a 64-bit digest, exactly how the
// serving pool keys graphs — with the full vertex list stored alongside, so
// digest collisions degrade to misses instead of wrong matrices).
//
// Entries are handed out as shared_ptr<const PhaseDerivatives>: eviction
// never tears a phase that is still sampling from an entry, and concurrent
// draws (sample_batch fan-out) share hot entries safely. Cached and uncached
// phases sample bit-identical trees, because the cached matrices are the
// deterministic product of the same construction the uncached path runs.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/sync.hpp"
#include "walk/prepared.hpp"

namespace cliquest::schur {

/// The per-active-set state a phase would otherwise rebuild per draw.
struct PhaseDerivatives {
  linalg::Matrix transition;  // Schur(G, S) walk matrix, |S| x |S|
  linalg::Matrix shortcut;    // shortcut matrix Q, n x n
  /// Power table {A, A^2, ..., A^(2^k)} of `transition` as built for the
  /// phase's target length; segments needing deeper levels (Las Vegas
  /// extensions) extend a local copy instead.
  std::vector<linalg::Matrix> powers;
  /// Row CDFs / alias tables for endpoint sampling against `powers`.
  walk::PreparedPowers prepared;

  std::size_t memory_bytes() const;
};

/// Monotone counters plus a residency snapshot (taken under the cache mutex).
struct SchurCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t trims = 0;  // whole-cache drops via trim()
  std::size_t resident_bytes = 0;
  int entry_count = 0;
};

class SchurCache {
 public:
  /// budget_bytes == 0 disables the cache: lookups miss, nothing is stored.
  explicit SchurCache(std::size_t budget_bytes);

  bool enabled() const { return budget_bytes_ > 0; }

  /// The active-set fingerprint: a 64-bit digest of the vertex list (order-
  /// sensitive; phases pass ascending ids).
  static std::uint64_t fingerprint(std::span<const int> active);

  /// Returns the cached derivatives for `active`, building them with
  /// `build` on a miss (outside the cache mutex, so concurrent draws keep
  /// moving; racing builders of one key both build, first insert wins, and
  /// both results are identical). `hit`, when non-null, reports whether the
  /// entry came from the cache. A disabled cache always builds and stores
  /// nothing. Entries larger than the whole budget are returned un-retained.
  std::shared_ptr<const PhaseDerivatives> get_or_build(
      std::span<const int> active,
      const std::function<PhaseDerivatives()>& build, bool* hit = nullptr);

  /// Drops every entry (the serving pool's memory-pressure hook: transient
  /// derivative caches evict before whole samplers do). Returns the bytes
  /// released from residency.
  std::size_t trim();

  std::size_t resident_bytes() const;
  SchurCacheStats stats() const;

 private:
  /// The full vertex list is the map key (the digest is only its hash), so a
  /// digest collision can never return the wrong matrices. Hash and equality
  /// are transparent over spans: the hit path probes with the caller's
  /// active-set span directly, no key copy.
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::span<const int> key) const {
      return static_cast<std::size_t>(fingerprint(key));
    }
  };

  struct KeyEqual {
    using is_transparent = void;
    bool operator()(std::span<const int> a, std::span<const int> b) const {
      return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
    }
  };

  struct Entry {
    std::shared_ptr<const PhaseDerivatives> derivatives;
    std::size_t bytes = 0;
    std::list<const std::vector<int>*>::iterator lru_it;
  };

  void evict_to_budget_locked() REQUIRES(mutex_);

  const std::size_t budget_bytes_;
  mutable util::Mutex mutex_;
  std::unordered_map<std::vector<int>, Entry, KeyHash, KeyEqual> entries_
      GUARDED_BY(mutex_);
  /// Eviction order, coldest first; points at the node-stable map keys.
  std::list<const std::vector<int>*> lru_ GUARDED_BY(mutex_);
  std::size_t resident_bytes_ GUARDED_BY(mutex_) = 0;
  SchurCacheStats stats_ GUARDED_BY(mutex_);
};

}  // namespace cliquest::schur
